//! `dynbc-racecheck`: shadow-state analysis for checked kernel execution.
//!
//! The simulator's host-parallel launch path is sound only under the
//! sharing contract documented in [`crate::mem`]: concurrent blocks touch
//! plain cells disjointly, contended cells go through one self-commuting
//! atomic op kind per launch. That contract was previously *documented but
//! unchecked* — exactly the class of bug `cuda-memcheck --tool racecheck`
//! exists for on real hardware. This module is the equivalent for the
//! simulator: when a launch runs in checked mode
//! ([`Gpu::launch_checked`](crate::Gpu::launch_checked) or
//! `DYNBC_RACECHECK=1`), every [`Lane`](crate::block::Lane) and scalar
//! access is recorded into a per-block shadow log (buffer, index, op kind,
//! lane, barrier epoch), the logs are merged in block-index order, and a
//! per-cell analysis reports four diagnostic classes:
//!
//! * **data race** — a plain write concurrent with any other plain access
//!   to the same cell: across lanes of one `parallel_for` (nothing inside
//!   a `parallel_for` orders its lanes short of [`Lane::barrier`]), or
//!   across blocks anywhere in the launch (no inter-block sync exists);
//! * **atomic-contract violation** — the [`crate::mem`] contract: atomic
//!   and plain access to one cell from different blocks, or two different
//!   atomic op kinds on one cell from different blocks;
//! * **barrier divergence** — a [`Lane::barrier`] not reached the same
//!   number of times by every lane of a `parallel_for` (a real GPU
//!   deadlocks; unchecked mode panics);
//! * **out-of-bounds** — a lane access past the end of a buffer, reported
//!   with buffer name and index (the faulting op is suppressed so the
//!   analysis can keep going and report every OOB site in the launch).
//!
//! # Concurrency model
//!
//! Within a block the simulator executes lanes sequentially and documents
//! that parallelism is *modeled, never raced* — but the kernels are ports
//! of CUDA kernels, so the checker applies CUDA's ordering instead: lanes
//! of one `parallel_for` invocation are mutually concurrent (separated
//! only by [`Lane::barrier`] phases), while scalar accesses and the
//! boundary between two `parallel_for` calls are block-uniform program
//! points and therefore ordered. Across blocks, nothing is ordered.
//!
//! The paper's kernels contain *deliberate* benign races (same-value
//! test-then-set on the `t` flags, duplicate frontier relocation writes);
//! CUDA expresses those with `volatile` accesses, and so does the
//! simulator: [`Lane::write_volatile`]/[`Lane::read_volatile`] are exempt
//! from intra-block hazard reporting but still participate in cross-block
//! checks, where no annotation can make a plain race safe.
//!
//! [`Lane::barrier`]: crate::block::Lane::barrier
//! [`Lane::write_volatile`]: crate::block::Lane::write_volatile
//! [`Lane::read_volatile`]: crate::block::Lane::read_volatile

use crate::device::DeviceConfig;
use std::collections::HashMap;
use std::fmt;

/// Lane id recorded for `read_scalar`/`write_scalar` traffic, which is a
/// block-uniform program point rather than a concurrent lane.
pub(crate) const SCALAR_LANE: u32 = u32::MAX;

/// Cap on materialized diagnostics per launch; everything past it is
/// counted in [`CheckReport::suppressed`].
const MAX_DIAGNOSTICS: usize = 64;

/// Per-cell, per-region retention for intra-block hazard pairing. Two
/// entries with distinct lanes already witness any later conflict; a few
/// more keep mixed-phase fixtures honest.
const KEEP: usize = 4;

/// Which atomic read-modify-write touched a cell. The sharing contract
/// allows exactly one kind per contended cell per launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicKind {
    /// `atomicAdd` on a `u32` cell.
    AddU32,
    /// CAS-loop `atomicAdd` on an `f64` cell.
    AddF64,
    /// `atomicMax` on a `u32` cell.
    MaxU32,
    /// `atomicCAS` on a `u32` cell.
    CasU32,
    /// `atomicCAS` on a `u8` cell.
    CasU8,
}

impl AtomicKind {
    fn name(self) -> &'static str {
        match self {
            AtomicKind::AddU32 => "atomic_add_u32",
            AtomicKind::AddF64 => "atomic_add_f64",
            AtomicKind::MaxU32 => "atomic_max_u32",
            AtomicKind::CasU32 => "atomic_cas_u32",
            AtomicKind::CasU8 => "atomic_cas_u8",
        }
    }
}

/// How a recorded access touched its cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Plain lane (or scalar) read.
    Read,
    /// Plain lane (or scalar) write.
    Write,
    /// Volatile-annotated read: exempt from intra-block hazards.
    VolatileRead,
    /// Volatile-annotated write: a paper-proven benign race; exempt from
    /// intra-block hazards, still a write for cross-block analysis.
    VolatileWrite,
    /// Atomic read-modify-write of the given kind.
    Atomic(AtomicKind),
}

impl AccessKind {
    fn describe(self) -> &'static str {
        match self {
            AccessKind::Read => "plain read",
            AccessKind::Write => "plain write",
            AccessKind::VolatileRead => "volatile read",
            AccessKind::VolatileWrite => "volatile write",
            AccessKind::Atomic(k) => k.name(),
        }
    }
}

/// One recorded device-memory access (shadow-state entry).
#[derive(Debug, Clone, Copy)]
pub(crate) struct AccessRecord {
    pub base: u64,
    pub index: u32,
    pub kind: AccessKind,
    /// Item index within the `parallel_for`, or [`SCALAR_LANE`].
    pub lane: u32,
    /// Program region within the block: bumped at every `parallel_for`
    /// boundary and every block barrier. Accesses in different regions of
    /// one block are ordered.
    pub region: u32,
    /// [`Lane::barrier`](crate::block::Lane::barrier) count of this lane at
    /// access time; lanes in the same region but different phases are
    /// ordered.
    pub phase: u32,
    /// Block-level `barrier()` epoch at access time (reporting context).
    pub epoch: u32,
    pub label: &'static str,
    /// Raw bits of the written value (same-value write-write races are
    /// downgraded to warnings, matching the paper's benign-race argument).
    pub value: u64,
}

/// An out-of-bounds access caught (and suppressed) in checked mode.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OobRecord {
    pub base: u64,
    pub index: usize,
    pub len: usize,
    pub lane: u32,
    pub kind: AccessKind,
    pub label: &'static str,
}

/// A `parallel_for` whose lanes disagreed on how many lane barriers they
/// reached.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DivergenceRecord {
    pub lane: u32,
    pub got: u32,
    pub expected: u32,
    pub label: &'static str,
}

/// Per-block shadow log filled by the instrumentation hooks in
/// [`crate::block`] and analyzed after the launch.
#[derive(Debug)]
pub(crate) struct Recorder {
    pub block: usize,
    pub accesses: Vec<AccessRecord>,
    /// `(base, name, len)` of every buffer this block touched.
    pub buffers: Vec<(u64, &'static str, usize)>,
    pub oob: Vec<OobRecord>,
    pub divergence: Vec<DivergenceRecord>,
    /// Base of the most recently noted buffer: kernels hammer one buffer
    /// for long runs, so this turns `note_buffer`'s per-access linear
    /// scan into a single compare on the happy path.
    last_base: u64,
}

/// Access-log capacity reserved up front: checked runs of the BC kernels
/// log thousands of accesses per block, and growing the vec inside the
/// per-access hot path is a measurable share of racecheck's overhead.
const ACCESS_LOG_RESERVE: usize = 4096;

impl Recorder {
    pub(crate) fn new(block: usize) -> Self {
        Self {
            block,
            accesses: Vec::with_capacity(ACCESS_LOG_RESERVE),
            buffers: Vec::with_capacity(16),
            oob: Vec::new(),
            divergence: Vec::new(),
            last_base: u64::MAX,
        }
    }

    #[inline]
    pub(crate) fn note_buffer(&mut self, base: u64, name: &'static str, len: usize) {
        if base == self.last_base {
            return;
        }
        self.last_base = base;
        if !self.buffers.iter().any(|&(b, _, _)| b == base) {
            self.buffers.push((base, name, len));
        }
    }
}

/// Diagnostic classes, one per failure mode of the sharing contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiagClass {
    /// Plain write concurrent with another plain access to the same cell.
    DataRace,
    /// Atomic+plain mixing or mixed atomic op kinds across blocks.
    AtomicContract,
    /// A lane barrier not reached uniformly by all lanes of a block.
    BarrierDivergence,
    /// Buffer access past the end of the allocation.
    OutOfBounds,
}

impl DiagClass {
    fn bit(self) -> u8 {
        match self {
            DiagClass::DataRace => 1,
            DiagClass::AtomicContract => 2,
            DiagClass::BarrierDivergence => 4,
            DiagClass::OutOfBounds => 8,
        }
    }
}

impl fmt::Display for DiagClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DiagClass::DataRace => "data-race",
            DiagClass::AtomicContract => "atomic-contract",
            DiagClass::BarrierDivergence => "barrier-divergence",
            DiagClass::OutOfBounds => "out-of-bounds",
        })
    }
}

/// How bad a diagnostic is. Same-value write-write races are warnings
/// (benign on the hardware the paper targets); everything else is an
/// error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but provably value-preserving.
    Warning,
    /// A genuine contract violation.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding of the checker, with everything needed to locate it:
/// kernel, per-kernel label, buffer, cell index, and the offending
/// blocks/lanes.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Failure class.
    pub class: DiagClass,
    /// Error or (benign same-value race) warning.
    pub severity: Severity,
    /// Launch name (from [`Gpu::launch_named`](crate::Gpu::launch_named)).
    pub kernel: String,
    /// Kernel-phase label ([`BlockCtx::label`](crate::BlockCtx::label)) at
    /// the *second* (conflicting) access.
    pub label: &'static str,
    /// Buffer name, when the diagnostic concerns a cell.
    pub buffer: Option<&'static str>,
    /// Cell index within the buffer, when applicable.
    pub index: Option<usize>,
    /// Blocks involved, first-seen order.
    pub blocks: Vec<usize>,
    /// Lanes involved ([`u32::MAX`] = scalar context), first-seen order.
    pub lanes: Vec<u32>,
    /// Human-readable account of the conflicting pair.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} in `{}`", self.severity, self.class, self.kernel)?;
        if !self.label.is_empty() {
            write!(f, " ({})", self.label)?;
        }
        if let (Some(buf), Some(i)) = (self.buffer, self.index) {
            write!(f, " on `{buf}`[{i}]")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// The result of analyzing one checked launch.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Launch name the diagnostics belong to.
    pub kernel: String,
    /// Findings, in deterministic block-index/program order, capped at an
    /// internal limit (see [`CheckReport::suppressed`]).
    pub diagnostics: Vec<Diagnostic>,
    /// Total device-memory accesses recorded.
    pub accesses: u64,
    /// Distinct cells touched.
    pub cells: usize,
    /// Diagnostics dropped past the cap (all treated as errors).
    pub suppressed: usize,
}

impl CheckReport {
    /// True when the launch produced no findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty() && self.suppressed == 0
    }

    /// Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// True when any error-severity finding (or overflow) exists.
    pub fn has_errors(&self) -> bool {
        self.suppressed > 0 || self.errors().next().is_some()
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "racecheck[{}]: {} diagnostic(s) ({} error(s), {} warning(s), {} suppressed) \
             over {} access(es) / {} cell(s)",
            self.kernel,
            self.diagnostics.len(),
            self.errors().count(),
            self.warnings().count(),
            self.suppressed,
            self.accesses,
            self.cells,
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// One prior toucher of a cell, kept for cross-block pairing.
#[derive(Debug, Clone, Copy)]
struct Touch {
    block: u32,
    lane: u32,
    label: &'static str,
    kind: AccessKind,
}

/// First two touches with *distinct blocks* — enough to witness any
/// cross-block conflict against a later access.
#[derive(Debug, Default, Clone, Copy)]
struct BlockPair {
    a: Option<Touch>,
    b: Option<Touch>,
}

impl BlockPair {
    fn add(&mut self, t: Touch) {
        match (self.a, self.b) {
            (None, _) => self.a = Some(t),
            (Some(x), None) if x.block != t.block => self.b = Some(t),
            _ => {}
        }
    }

    fn other_than(&self, block: u32) -> Option<Touch> {
        [self.a, self.b]
            .into_iter()
            .flatten()
            .find(|t| t.block != block)
    }
}

/// Per-cell shadow state: a region-local window for intra-block hazards
/// plus launch-wide per-block summaries for cross-block analysis.
#[derive(Debug)]
struct CellState {
    /// `(block, region)` the intra-block window belongs to.
    region_key: (u32, u32),
    /// Plain non-volatile reads in the window: `(lane, phase, label)`.
    reads: Vec<(u32, u32, &'static str)>,
    /// Plain non-volatile writes: `(lane, phase, value, label)`.
    writes: Vec<(u32, u32, u64, &'static str)>,
    /// Atomics: `(lane, phase, label)`.
    atomics: Vec<(u32, u32, &'static str)>,
    /// Launch-wide: blocks that wrote (plain or volatile).
    wr_blocks: BlockPair,
    /// Launch-wide: blocks that read (plain or volatile).
    rd_blocks: BlockPair,
    /// Launch-wide: blocks that issued atomics.
    at_blocks: BlockPair,
    /// First atomic kind seen, and the first *different* kind.
    kind_a: Option<(AtomicKind, Touch)>,
    kind_b: Option<(AtomicKind, Touch)>,
    /// Classes already reported for this cell (dedup bitmask).
    reported: u8,
}

impl CellState {
    fn new(block: u32, region: u32) -> Self {
        Self {
            region_key: (block, region),
            reads: Vec::new(),
            writes: Vec::new(),
            atomics: Vec::new(),
            wr_blocks: BlockPair::default(),
            rd_blocks: BlockPair::default(),
            at_blocks: BlockPair::default(),
            kind_a: None,
            kind_b: None,
            reported: 0,
        }
    }
}

/// Diagnostic accumulator with the materialization cap.
struct Sink {
    diagnostics: Vec<Diagnostic>,
    suppressed: usize,
}

impl Sink {
    fn push(&mut self, d: Diagnostic) {
        if self.diagnostics.len() < MAX_DIAGNOSTICS {
            self.diagnostics.push(d);
        } else {
            self.suppressed += 1;
        }
    }
}

fn lane_str(dev: &DeviceConfig, lane: u32) -> String {
    if lane == SCALAR_LANE {
        "scalar ctx".to_string()
    } else {
        format!("lane {lane} (warp {})", dev.warp_of(lane))
    }
}

/// Analyzes the merged per-block shadow logs of one launch. Logs arrive in
/// block-index order and are scanned in program order, so the report is
/// deterministic for any host-thread count.
pub(crate) fn analyze(kernel: &str, dev: &DeviceConfig, recs: &[Recorder]) -> CheckReport {
    let mut buffers: HashMap<u64, (&'static str, usize)> = HashMap::new();
    for rec in recs {
        for &(base, name, len) in &rec.buffers {
            buffers.entry(base).or_insert((name, len));
        }
    }
    let buf_name = |base: u64| buffers.get(&base).map_or("?", |&(n, _)| n);

    let mut cells: HashMap<(u64, u32), CellState> = HashMap::new();
    let mut sink = Sink {
        diagnostics: Vec::new(),
        suppressed: 0,
    };
    let mut accesses = 0u64;

    for rec in recs {
        let block = rec.block as u32;

        for d in &rec.divergence {
            sink.push(Diagnostic {
                class: DiagClass::BarrierDivergence,
                severity: Severity::Error,
                kernel: kernel.to_string(),
                label: d.label,
                buffer: None,
                index: None,
                blocks: vec![rec.block],
                lanes: vec![d.lane],
                message: format!(
                    "{} reached {} lane-barrier(s) where earlier lanes of block {} reached {} \
                     — a real GPU would deadlock",
                    lane_str(dev, d.lane),
                    d.got,
                    rec.block,
                    d.expected
                ),
            });
        }

        for o in &rec.oob {
            accesses += 1;
            sink.push(Diagnostic {
                class: DiagClass::OutOfBounds,
                severity: Severity::Error,
                kernel: kernel.to_string(),
                label: o.label,
                buffer: Some(buf_name(o.base)),
                index: Some(o.index),
                blocks: vec![rec.block],
                lanes: vec![o.lane],
                message: format!(
                    "{} of index {} in block {} by {}, but `{}` has only {} element(s) \
                     (operation suppressed)",
                    o.kind.describe(),
                    o.index,
                    rec.block,
                    lane_str(dev, o.lane),
                    buf_name(o.base),
                    o.len
                ),
            });
        }

        for a in &rec.accesses {
            accesses += 1;
            let cell = cells
                .entry((a.base, a.index))
                .or_insert_with(|| CellState::new(block, a.region));

            // Entering a new ordered program region resets the intra-block
            // hazard window; launch-wide summaries persist.
            if cell.region_key != (block, a.region) {
                cell.region_key = (block, a.region);
                cell.reads.clear();
                cell.writes.clear();
                cell.atomics.clear();
            }

            let name = buf_name(a.base);
            let idx = a.index as usize;

            // --- Intra-block hazards: same region, same phase, other lane.
            let conflict_read = |c: &CellState| {
                c.reads
                    .iter()
                    .copied()
                    .find(|&(l, p, _)| l != a.lane && p == a.phase)
            };
            let conflict_write = |c: &CellState| {
                c.writes
                    .iter()
                    .copied()
                    .find(|&(l, p, _, _)| l != a.lane && p == a.phase)
            };
            let conflict_atomic = |c: &CellState| {
                c.atomics
                    .iter()
                    .copied()
                    .find(|&(l, p, _)| l != a.lane && p == a.phase)
            };
            match a.kind {
                AccessKind::Write => {
                    if cell.reported & DiagClass::DataRace.bit() == 0 {
                        if let Some((l, _, lb)) = conflict_read(cell) {
                            cell.reported |= DiagClass::DataRace.bit();
                            sink.push(intra_diag(
                                kernel,
                                dev,
                                DiagClass::DataRace,
                                Severity::Error,
                                a,
                                name,
                                idx,
                                rec.block,
                                l,
                                lb,
                                "plain write races with earlier plain read",
                            ));
                        } else if let Some((l, _, v, lb)) = conflict_write(cell) {
                            let (sev, what) = if v == a.value {
                                (
                                    Severity::Warning,
                                    "same-value write-write race (benign on the paper's hardware)",
                                )
                            } else {
                                (Severity::Error, "write-write race with differing values")
                            };
                            cell.reported |= DiagClass::DataRace.bit();
                            sink.push(intra_diag(
                                kernel,
                                dev,
                                DiagClass::DataRace,
                                sev,
                                a,
                                name,
                                idx,
                                rec.block,
                                l,
                                lb,
                                what,
                            ));
                        }
                    }
                    if cell.reported & DiagClass::AtomicContract.bit() == 0 {
                        if let Some((l, _, lb)) = conflict_atomic(cell) {
                            cell.reported |= DiagClass::AtomicContract.bit();
                            sink.push(intra_diag(
                                kernel,
                                dev,
                                DiagClass::AtomicContract,
                                Severity::Error,
                                a,
                                name,
                                idx,
                                rec.block,
                                l,
                                lb,
                                "plain write races with earlier atomic",
                            ));
                        }
                    }
                }
                AccessKind::Read => {
                    if cell.reported & DiagClass::DataRace.bit() == 0 {
                        if let Some((l, _, _, lb)) = conflict_write(cell) {
                            cell.reported |= DiagClass::DataRace.bit();
                            sink.push(intra_diag(
                                kernel,
                                dev,
                                DiagClass::DataRace,
                                Severity::Error,
                                a,
                                name,
                                idx,
                                rec.block,
                                l,
                                lb,
                                "plain read races with earlier plain write",
                            ));
                        }
                    }
                }
                AccessKind::Atomic(_) => {
                    if cell.reported & DiagClass::AtomicContract.bit() == 0 {
                        if let Some((l, _, _, lb)) = conflict_write(cell) {
                            cell.reported |= DiagClass::AtomicContract.bit();
                            sink.push(intra_diag(
                                kernel,
                                dev,
                                DiagClass::AtomicContract,
                                Severity::Error,
                                a,
                                name,
                                idx,
                                rec.block,
                                l,
                                lb,
                                "atomic races with earlier plain write",
                            ));
                        }
                    }
                }
                AccessKind::VolatileRead | AccessKind::VolatileWrite => {}
            }

            // Update the intra-block window (bounded retention).
            match a.kind {
                AccessKind::Read => {
                    if cell.reads.len() < KEEP
                        && !cell
                            .reads
                            .iter()
                            .any(|&(l, p, _)| l == a.lane && p == a.phase)
                    {
                        cell.reads.push((a.lane, a.phase, a.label));
                    }
                }
                AccessKind::Write => {
                    if cell.writes.len() < KEEP {
                        cell.writes.push((a.lane, a.phase, a.value, a.label));
                    }
                }
                AccessKind::Atomic(_) => {
                    if cell.atomics.len() < KEEP
                        && !cell
                            .atomics
                            .iter()
                            .any(|&(l, p, _)| l == a.lane && p == a.phase)
                    {
                        cell.atomics.push((a.lane, a.phase, a.label));
                    }
                }
                AccessKind::VolatileRead | AccessKind::VolatileWrite => {}
            }

            // --- Cross-block hazards: any other block, no ordering exists.
            let touch = Touch {
                block,
                lane: a.lane,
                label: a.label,
                kind: a.kind,
            };
            let is_write = matches!(a.kind, AccessKind::Write | AccessKind::VolatileWrite);
            let is_read = matches!(a.kind, AccessKind::Read | AccessKind::VolatileRead);
            if is_write {
                if cell.reported & DiagClass::DataRace.bit() == 0 {
                    if let Some(o) = cell
                        .wr_blocks
                        .other_than(block)
                        .or_else(|| cell.rd_blocks.other_than(block))
                    {
                        cell.reported |= DiagClass::DataRace.bit();
                        sink.push(cross_diag(
                            kernel,
                            dev,
                            DiagClass::DataRace,
                            a,
                            name,
                            idx,
                            rec.block,
                            o,
                        ));
                    }
                }
                if cell.reported & DiagClass::AtomicContract.bit() == 0 {
                    if let Some(o) = cell.at_blocks.other_than(block) {
                        cell.reported |= DiagClass::AtomicContract.bit();
                        sink.push(cross_diag(
                            kernel,
                            dev,
                            DiagClass::AtomicContract,
                            a,
                            name,
                            idx,
                            rec.block,
                            o,
                        ));
                    }
                }
            } else if is_read {
                if cell.reported & DiagClass::DataRace.bit() == 0 {
                    if let Some(o) = cell.wr_blocks.other_than(block) {
                        cell.reported |= DiagClass::DataRace.bit();
                        sink.push(cross_diag(
                            kernel,
                            dev,
                            DiagClass::DataRace,
                            a,
                            name,
                            idx,
                            rec.block,
                            o,
                        ));
                    }
                }
                if cell.reported & DiagClass::AtomicContract.bit() == 0 {
                    if let Some(o) = cell.at_blocks.other_than(block) {
                        cell.reported |= DiagClass::AtomicContract.bit();
                        sink.push(cross_diag(
                            kernel,
                            dev,
                            DiagClass::AtomicContract,
                            a,
                            name,
                            idx,
                            rec.block,
                            o,
                        ));
                    }
                }
            } else if let AccessKind::Atomic(k) = a.kind {
                if cell.reported & DiagClass::AtomicContract.bit() == 0 {
                    if let Some(o) = cell
                        .wr_blocks
                        .other_than(block)
                        .or_else(|| cell.rd_blocks.other_than(block))
                    {
                        cell.reported |= DiagClass::AtomicContract.bit();
                        sink.push(cross_diag(
                            kernel,
                            dev,
                            DiagClass::AtomicContract,
                            a,
                            name,
                            idx,
                            rec.block,
                            o,
                        ));
                    }
                }
                match (cell.kind_a, cell.kind_b) {
                    (None, _) => cell.kind_a = Some((k, touch)),
                    (Some((ka, _)), None) if ka != k => cell.kind_b = Some((k, touch)),
                    _ => {}
                }
            }

            // Mixed atomic kinds become a violation once atomics span two
            // blocks (within one block they execute sequentially).
            if cell.reported & DiagClass::AtomicContract.bit() == 0 {
                if let (Some((ka, ta)), Some((kb, tb))) = (cell.kind_a, cell.kind_b) {
                    let multi_block = matches!(a.kind, AccessKind::Atomic(_))
                        && cell.at_blocks.other_than(block).is_some();
                    if multi_block {
                        cell.reported |= DiagClass::AtomicContract.bit();
                        sink.push(Diagnostic {
                            class: DiagClass::AtomicContract,
                            severity: Severity::Error,
                            kernel: kernel.to_string(),
                            label: a.label,
                            buffer: Some(name),
                            index: Some(idx),
                            blocks: vec![ta.block as usize, tb.block as usize],
                            lanes: vec![ta.lane, tb.lane],
                            message: format!(
                                "mixed atomic op kinds on one contended cell: {} (block {}, {}) \
                                 vs {} (block {}, {}) — order-dependent on real hardware",
                                ka.name(),
                                ta.block,
                                lane_str(dev, ta.lane),
                                kb.name(),
                                tb.block,
                                lane_str(dev, tb.lane)
                            ),
                        });
                    }
                }
            }

            // Update launch-wide summaries.
            if is_write {
                cell.wr_blocks.add(touch);
            } else if is_read {
                cell.rd_blocks.add(touch);
            } else {
                cell.at_blocks.add(touch);
            }
        }
    }

    CheckReport {
        kernel: kernel.to_string(),
        diagnostics: sink.diagnostics,
        accesses,
        cells: cells.len(),
        suppressed: sink.suppressed,
    }
}

#[allow(clippy::too_many_arguments)]
fn intra_diag(
    kernel: &str,
    dev: &DeviceConfig,
    class: DiagClass,
    severity: Severity,
    a: &AccessRecord,
    buffer: &'static str,
    index: usize,
    block: usize,
    other_lane: u32,
    other_label: &'static str,
    what: &str,
) -> Diagnostic {
    Diagnostic {
        class,
        severity,
        kernel: kernel.to_string(),
        label: a.label,
        buffer: Some(buffer),
        index: Some(index),
        blocks: vec![block],
        lanes: vec![other_lane, a.lane],
        message: format!(
            "{what}: {} by {} vs {} by {} in block {block}, same parallel_for, \
             no lane barrier between them (epoch {})",
            a.kind.describe(),
            lane_str(dev, a.lane),
            if other_label.is_empty() {
                "access"
            } else {
                other_label
            },
            lane_str(dev, other_lane),
            a.epoch
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn cross_diag(
    kernel: &str,
    dev: &DeviceConfig,
    class: DiagClass,
    a: &AccessRecord,
    buffer: &'static str,
    index: usize,
    block: usize,
    other: Touch,
) -> Diagnostic {
    Diagnostic {
        class,
        severity: Severity::Error,
        kernel: kernel.to_string(),
        label: a.label,
        buffer: Some(buffer),
        index: Some(index),
        blocks: vec![other.block as usize, block],
        lanes: vec![other.lane, a.lane],
        message: format!(
            "{} by block {block} {} conflicts with {} by block {} {}{} — \
             blocks of one launch are never ordered",
            a.kind.describe(),
            lane_str(dev, a.lane),
            other.kind.describe(),
            other.block,
            lane_str(dev, other.lane),
            if other.label.is_empty() {
                String::new()
            } else {
                format!(" in {}", other.label)
            }
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Gpu;
    use crate::mem::GpuBuffer;

    fn gpu() -> Gpu {
        Gpu::new(DeviceConfig::test_tiny()).with_racecheck(false)
    }

    fn classes(report: &CheckReport) -> Vec<DiagClass> {
        report.diagnostics.iter().map(|d| d.class).collect()
    }

    #[test]
    fn intra_block_read_write_race_is_reported_with_context() {
        let mut g = gpu();
        let cells = GpuBuffer::<u32>::new(8, 0).named("cells");
        let (_, check) = g.launch_checked("racy", 1, |block, _| {
            block.parallel_for(4, |lane, i| {
                // Every lane reads cell 3; lane 2 also writes it.
                lane.read(&cells, 3);
                if i == 2 {
                    lane.write(&cells, 3, 9);
                }
            });
        });
        assert!(check.has_errors());
        let d = check.errors().next().expect("a data race");
        assert_eq!(d.class, DiagClass::DataRace);
        assert_eq!(d.kernel, "racy");
        assert_eq!(d.buffer, Some("cells"));
        assert_eq!(d.index, Some(3));
        assert!(d.lanes.contains(&2), "offending lane listed: {:?}", d.lanes);
        let text = d.to_string();
        assert!(
            text.contains("`cells`[3]"),
            "display locates the cell: {text}"
        );
    }

    #[test]
    fn same_value_waw_is_warning_differing_values_error() {
        let mut g = gpu();
        let cells = GpuBuffer::<u32>::new(4, 0).named("flags");
        let (_, check) = g.launch_checked("benign", 1, |block, _| {
            block.parallel_for(4, |lane, _| {
                lane.write(&cells, 0, 7); // all lanes agree on the value
            });
        });
        assert!(!check.has_errors(), "same-value WAW must not be an error");
        assert_eq!(check.warnings().count(), 1);
        assert_eq!(check.warnings().next().unwrap().class, DiagClass::DataRace);

        let (_, check) = g.launch_checked("hostile", 1, |block, _| {
            block.parallel_for(4, |lane, i| {
                lane.write(&cells, 0, i as u32); // values differ per lane
            });
        });
        assert!(check.has_errors(), "differing-value WAW is a real race");
    }

    #[test]
    fn volatile_annotation_silences_intra_block_but_not_cross_block() {
        let mut g = gpu();
        let cells = GpuBuffer::<u32>::new(4, 0).named("t");
        let (_, check) = g.launch_checked("volatile_ok", 1, |block, _| {
            block.parallel_for(4, |lane, _| {
                // The kernels' benign test-then-set idiom.
                if lane.read(&cells, 1) == 0 {
                    lane.write_volatile(&cells, 1, 5);
                }
            });
        });
        assert!(check.is_clean(), "declared benign race reported: {check}");

        // The same write shared across blocks stays a hard race: no
        // annotation makes unsynchronized inter-block sharing safe.
        let (_, check) = g.launch_checked("volatile_cross", 2, |block, b| {
            block.parallel_for(1, |lane, _| {
                if b == 0 {
                    lane.write_volatile(&cells, 2, 1);
                } else {
                    lane.read(&cells, 2);
                }
            });
        });
        assert!(check.has_errors());
        assert!(classes(&check).contains(&DiagClass::DataRace));
        let d = check.errors().next().unwrap();
        assert_eq!(d.blocks.len(), 2, "both blocks identified: {:?}", d.blocks);
    }

    #[test]
    fn scalar_then_lane_access_is_ordered() {
        // Scalar writes are block-uniform program points: seeding a queue
        // head then reading it from every lane of the next parallel_for is
        // the kernels' standard shape and must stay clean.
        let mut g = gpu();
        let cells = GpuBuffer::<u32>::new(4, 0).named("lens");
        let (_, check) = g.launch_checked("scalar_ok", 1, |block, _| {
            block.write_scalar(&cells, 0, 3);
            block.parallel_for(4, |lane, _| {
                lane.read(&cells, 0);
            });
            block.barrier();
            block.write_scalar(&cells, 0, 0);
        });
        assert!(check.is_clean(), "{check}");
    }

    #[test]
    fn lane_barrier_phases_order_accesses() {
        let mut g = gpu();
        let cells = GpuBuffer::<u32>::new(4, 0).named("stage");
        let (_, check) = g.launch_checked("phased", 1, |block, _| {
            block.parallel_for(4, |lane, i| {
                if i == 0 {
                    lane.write(&cells, 0, 1);
                }
                lane.barrier(); // separates the write from the reads
                lane.read(&cells, 0);
            });
        });
        assert!(check.is_clean(), "barrier-separated phases raced: {check}");
    }

    #[test]
    fn atomic_mixed_with_plain_write_is_contract_violation() {
        let mut g = gpu();
        let cells = GpuBuffer::<u32>::new(4, 0).named("acc");
        let (_, check) = g.launch_checked("mixed", 1, |block, _| {
            block.parallel_for(4, |lane, i| {
                if i == 0 {
                    lane.write(&cells, 2, 1);
                } else {
                    lane.atomic_add_u32(&cells, 2, 1);
                }
            });
        });
        assert!(check.has_errors());
        assert!(classes(&check).contains(&DiagClass::AtomicContract));
    }

    #[test]
    fn cross_block_atomic_kinds_must_match() {
        let mut g = gpu();
        let cells = GpuBuffer::<u32>::new(4, 0).named("counter");
        // Same op kind from every block: self-commuting, allowed.
        let (_, check) = g.launch_checked("uniform", 2, |block, _| {
            block.parallel_for(2, |lane, _| {
                lane.atomic_add_u32(&cells, 0, 1);
            });
        });
        assert!(check.is_clean(), "uniform atomics flagged: {check}");
        // add vs max on one cell from different blocks: order-dependent.
        let (_, check) = g.launch_checked("disagree", 2, |block, b| {
            block.parallel_for(2, |lane, _| {
                if b == 0 {
                    lane.atomic_add_u32(&cells, 1, 1);
                } else {
                    lane.atomic_max_u32(&cells, 1, 9);
                }
            });
        });
        assert!(check.has_errors());
        let d = check.errors().next().unwrap();
        assert_eq!(d.class, DiagClass::AtomicContract);
        assert!(
            d.message.contains("atomic_add_u32") && d.message.contains("atomic_max_u32"),
            "names both kinds: {}",
            d.message
        );
    }

    #[test]
    fn barrier_divergence_reports_checked_and_panics_unchecked() {
        let mut g = gpu();
        let cells = GpuBuffer::<u32>::new(4, 0).named("x");
        let (_, check) = g.launch_checked("diverge", 1, |block, _| {
            block.parallel_for(4, |lane, i| {
                lane.read(&cells, i);
                if i % 2 == 0 {
                    lane.barrier(); // half the lanes never arrive
                }
            });
        });
        assert!(check.has_errors());
        let d = check.errors().next().unwrap();
        assert_eq!(d.class, DiagClass::BarrierDivergence);

        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut g = gpu();
            g.launch(1, |block, _| {
                block.parallel_for(4, |lane, i| {
                    lane.read(&cells, i);
                    if i % 2 == 0 {
                        lane.barrier();
                    }
                });
            });
        }));
        assert!(
            panicked.is_err(),
            "unchecked divergence models the deadlock"
        );
    }

    #[test]
    fn out_of_bounds_is_reported_and_suppressed() {
        let mut g = gpu();
        let cells = GpuBuffer::<u32>::from_vec(vec![11, 22]).named("short");
        let (_, check) = g.launch_checked("oob", 1, |block, _| {
            block.parallel_for(1, |lane, _| {
                lane.write(&cells, 7, 99); // past the end: suppressed
                lane.read(&cells, 1); // in bounds
            });
        });
        assert!(check.has_errors());
        let d = check.errors().next().unwrap();
        assert_eq!(d.class, DiagClass::OutOfBounds);
        assert_eq!(d.buffer, Some("short"));
        assert_eq!(d.index, Some(7));
        assert_eq!(cells.to_vec(), [11, 22], "faulting write must not land");
    }

    #[test]
    fn checked_mode_is_cost_and_result_neutral() {
        let run = |checked: bool| {
            let mut g = gpu();
            let buf = GpuBuffer::<f64>::new(32, 0.0).named("acc");
            let r = if checked {
                g.launch_checked("k", 3, |block, b| {
                    block.parallel_for(16, |lane, i| {
                        lane.atomic_add_f64(&buf, (b * 7 + i) % 32, 0.5);
                    });
                    block.barrier();
                })
                .0
            } else {
                g.launch(3, |block, b| {
                    block.parallel_for(16, |lane, i| {
                        lane.atomic_add_f64(&buf, (b * 7 + i) % 32, 0.5);
                    });
                    block.barrier();
                })
            };
            (r.seconds.to_bits(), r.stats, buf.to_vec())
        };
        let (s0, st0, v0) = run(false);
        let (s1, st1, v1) = run(true);
        assert_eq!(s0, s1, "checked launch must not change simulated time");
        assert_eq!(st0, st1);
        assert_eq!(v0, v1);
    }

    #[test]
    fn launch_named_panics_on_errors_and_counts_warnings() {
        let mut g = gpu().with_racecheck(true);
        let cells = GpuBuffer::<u32>::new(4, 0).named("w");
        g.launch_named("benign", 1, |block, _| {
            block.parallel_for(4, |lane, _| {
                lane.write(&cells, 0, 1); // same-value WAW: warning only
            });
        });
        assert_eq!(g.check_warnings(), 1);
        assert_eq!(g.checked_launches(), 1);
        let hit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            g.launch_named("hostile", 1, |block, _| {
                block.parallel_for(4, |lane, i| {
                    lane.write(&cells, 1, i as u32);
                });
            });
        }));
        assert!(hit.is_err(), "error diagnostics must fail the launch");
    }

    #[test]
    fn reports_are_deterministic_across_host_thread_counts() {
        let run = |threads: usize| {
            let mut g = gpu().with_host_threads(threads);
            let cells = GpuBuffer::<u32>::new(8, 0).named("shared");
            let (_, check) = g.launch_checked("racy", 4, |block, b| {
                block.parallel_for(2, |lane, i| {
                    lane.write(&cells, (b + i) % 3, b as u32);
                });
            });
            check.to_string()
        };
        let base = run(1);
        assert!(base.contains("data-race"));
        for threads in [2, 8] {
            assert_eq!(base, run(threads), "{threads} host threads");
        }
    }
}
