//! Machine-readable benchmark output: `BENCH_dynbc.json`.
//!
//! Every harness appends its numbers to one JSON file at the workspace
//! root so CI (or a human) can diff runs without scraping stdout. The
//! file is a single top-level object keyed by harness name; re-running a
//! harness replaces only its own entry, so the file accumulates the
//! latest result of each harness.
//!
//! The workspace vendors its dependencies (no network access to
//! crates.io), so this module hand-rolls the small JSON subset it needs:
//! emission of objects/arrays/strings/numbers, plus a top-level splitter
//! that treats each harness's value as an opaque balanced-brace span —
//! enough to merge files this module itself wrote.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Default output file name, at the workspace root.
pub const BENCH_JSON: &str = "BENCH_dynbc.json";

/// Version of the `BENCH_dynbc.json` layout, stamped as a top-level
/// `schema_version` entry on every write. Bump when the shape of harness
/// entries changes incompatibly (rows gained `schema_version` handling and
/// the telemetry sections at 2).
pub const SCHEMA_VERSION: u64 = 2;

/// One measured row of a harness (a graph × engine cell, or a
/// micro-bench configuration).
#[derive(Debug, Clone)]
pub struct Row {
    /// What was measured (suite graph short name, bench id, …).
    pub name: String,
    /// Engine / configuration label.
    pub engine: String,
    /// Simulated seconds on the machine model (0.0 when not applicable).
    pub model_seconds: f64,
    /// Host wall-clock seconds actually spent.
    pub wall_seconds: f64,
    /// Extra named scalars (speedups, counts, thread sweeps, …).
    pub extra: Vec<(String, f64)>,
}

impl Row {
    /// The shared row-emission helper: every section serializes its rows
    /// through this one method, so escaping and number formatting live in
    /// exactly one place.
    pub fn json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"name\": {}, \"engine\": {}, \"model_seconds\": {}, \"wall_seconds\": {}",
            json_string(&self.name),
            json_string(&self.engine),
            json_number(self.model_seconds),
            json_number(self.wall_seconds)
        );
        for (k, v) in &self.extra {
            let _ = write!(out, ", {}: {}", json_string(k), json_number(*v));
        }
        out.push('}');
        out
    }
}

/// One harness's report: metadata plus measured rows.
#[derive(Debug, Clone)]
pub struct HarnessReport {
    /// Harness name — the key in the top-level JSON object.
    pub harness: String,
    /// Host threads simulated blocks ran on (`DYNBC_HOST_THREADS`).
    pub host_threads: usize,
    /// Git revision of the working tree (read from `.git`, best effort).
    pub git_rev: String,
    /// Measured rows.
    pub rows: Vec<Row>,
}

impl HarnessReport {
    /// Starts a report for `harness`, stamping the current host-thread
    /// setting and git revision.
    pub fn new(harness: &str) -> Self {
        Self {
            harness: harness.to_string(),
            host_threads: dynbc_gpusim::host_threads_from_env(),
            git_rev: git_rev().unwrap_or_else(|| "unknown".to_string()),
            rows: Vec::new(),
        }
    }

    /// Adds a measured row.
    pub fn push_row(&mut self, name: &str, engine: &str, model_seconds: f64, wall_seconds: f64) {
        self.rows.push(Row {
            name: name.to_string(),
            engine: engine.to_string(),
            model_seconds,
            wall_seconds,
            extra: Vec::new(),
        });
    }

    /// Adds a named scalar to the most recent row.
    pub fn annotate(&mut self, key: &str, value: f64) {
        let row = self.rows.last_mut().expect("annotate before any push_row");
        row.extra.push((key.to_string(), value));
    }

    /// Adds a row with its extra scalars in one call — the common shape of
    /// a harness section (`push_row` + n× `annotate`).
    pub fn push_row_with(
        &mut self,
        name: &str,
        engine: &str,
        model_seconds: f64,
        wall_seconds: f64,
        extras: &[(&str, f64)],
    ) {
        self.push_row(name, engine, model_seconds, wall_seconds);
        for &(k, v) in extras {
            self.annotate(k, v);
        }
    }

    /// Serializes this harness's entry (the value under its name).
    fn value_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"host_threads\": {}, \"git_rev\": {}, \"rows\": [",
            self.host_threads,
            json_string(&self.git_rev)
        );
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&row.json());
        }
        out.push_str("]}");
        out
    }

    /// Merges this report into `path` (see the module docs) and returns
    /// the path written. Errors are soft: benchmark numbers must never
    /// take the harness down, so failures are printed and swallowed.
    pub fn write(&self, path: &Path) -> Option<PathBuf> {
        let existing = std::fs::read_to_string(path).unwrap_or_default();
        let mut entries = split_top_level(&existing);
        entries.retain(|(k, _)| k != &self.harness && k != "schema_version");
        entries.push((self.harness.clone(), self.value_json()));
        entries.insert(
            0,
            ("schema_version".to_string(), SCHEMA_VERSION.to_string()),
        );
        let mut out = String::from("{\n");
        for (i, (k, v)) in entries.iter().enumerate() {
            let _ = write!(out, "  {}: {}", json_string(k), v);
            out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
        }
        out.push_str("}\n");
        match std::fs::write(path, out) {
            Ok(()) => Some(path.to_path_buf()),
            Err(e) => {
                eprintln!("[bench] could not write {}: {e}", path.display());
                None
            }
        }
    }

    /// Merges into [`BENCH_JSON`] at the workspace root (falling back to
    /// the current directory when the root is not findable).
    pub fn write_default(&self) -> Option<PathBuf> {
        self.write(&workspace_root().join(BENCH_JSON))
    }
}

/// Walks upward from the current directory to the first ancestor holding
/// a `Cargo.toml` with a `[workspace]` table.
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

/// Resolves the checked-out git revision by reading `.git/HEAD` (and one
/// level of ref indirection) — no subprocess, works offline.
pub fn git_rev() -> Option<String> {
    let git = workspace_root().join(".git");
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    if let Some(refname) = head.strip_prefix("ref: ") {
        if let Ok(hash) = std::fs::read_to_string(git.join(refname)) {
            return Some(hash.trim().to_string());
        }
        // Packed refs fallback.
        let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
        for line in packed.lines() {
            if let Some(hash) = line.strip_suffix(refname) {
                return Some(hash.trim().to_string());
            }
        }
        None
    } else {
        Some(head.to_string())
    }
}

/// JSON string literal with the escapes the names here can contain.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite JSON number (JSON has no NaN/Inf; clamp to null).
fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Splits a top-level JSON object into `(key, raw value text)` pairs by
/// balanced-brace scanning. Only guaranteed for files this module wrote;
/// anything unparsable yields an empty list (the file gets rebuilt).
fn split_top_level(text: &str) -> Vec<(String, String)> {
    let mut entries = Vec::new();
    let bytes = text.as_bytes();
    let mut i = match text.find('{') {
        Some(p) => p + 1,
        None => return entries,
    };
    while i < bytes.len() {
        // Key: next string literal.
        while i < bytes.len() && bytes[i] != b'"' {
            if bytes[i] == b'}' {
                return entries;
            }
            i += 1;
        }
        if i >= bytes.len() {
            return entries;
        }
        let key_start = i + 1;
        let mut j = key_start;
        while j < bytes.len() && bytes[j] != b'"' {
            if bytes[j] == b'\\' {
                j += 1;
            }
            j += 1;
        }
        if j >= bytes.len() {
            return entries;
        }
        let key = text[key_start..j].to_string();
        // Skip to the colon, then capture the balanced value span.
        let mut k = j + 1;
        while k < bytes.len() && bytes[k] != b':' {
            k += 1;
        }
        k += 1;
        while k < bytes.len() && bytes[k].is_ascii_whitespace() {
            k += 1;
        }
        let value_start = k;
        let mut depth = 0i64;
        let mut in_str = false;
        while k < bytes.len() {
            let c = bytes[k];
            if in_str {
                if c == b'\\' {
                    k += 1;
                } else if c == b'"' {
                    in_str = false;
                }
            } else {
                match c {
                    b'"' => in_str = true,
                    b'{' | b'[' => depth += 1,
                    b'}' | b']' => {
                        if depth == 0 {
                            break; // closing brace of the top-level object
                        }
                        depth -= 1;
                    }
                    b',' if depth == 0 => break,
                    _ => {}
                }
            }
            k += 1;
        }
        let value = text[value_start..k].trim().to_string();
        if !value.is_empty() {
            entries.push((key, value));
        }
        i = k + 1;
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_serialize_with_metadata_and_extras() {
        let mut r = HarnessReport::new("unit");
        r.host_threads = 4;
        r.git_rev = "abc123".to_string();
        r.push_row("small", "GPU Node", 1.5, 0.25);
        r.annotate("speedup", 2.0);
        let json = r.value_json();
        assert!(json.contains("\"host_threads\": 4"), "{json}");
        assert!(json.contains("\"git_rev\": \"abc123\""), "{json}");
        assert!(json.contains("\"model_seconds\": 1.5"), "{json}");
        assert!(json.contains("\"speedup\": 2"), "{json}");
    }

    #[test]
    fn split_round_trips_own_output() {
        let mut r = HarnessReport::new("alpha");
        r.push_row("g", "e", 1.0, 2.0);
        let merged = format!(
            "{{\n  \"alpha\": {},\n  \"beta\": {{\"rows\": []}}\n}}\n",
            r.value_json()
        );
        let entries = split_top_level(&merged);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, "alpha");
        assert_eq!(
            entries[1],
            ("beta".to_string(), "{\"rows\": []}".to_string())
        );
        assert_eq!(entries[0].1, r.value_json());
    }

    #[test]
    fn write_merges_by_harness_key() {
        let dir = std::env::temp_dir().join(format!("dynbc_bench_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let _ = std::fs::remove_file(&path);

        let mut a = HarnessReport::new("a");
        a.push_row("g", "e", 1.0, 0.1);
        a.write(&path).unwrap();
        let mut b = HarnessReport::new("b");
        b.push_row("h", "f", 2.0, 0.2);
        b.write(&path).unwrap();
        // Re-running harness "a" replaces only its entry.
        let mut a2 = HarnessReport::new("a");
        a2.push_row("g", "e", 3.0, 0.3);
        a2.write(&path).unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let entries = split_top_level(&text);
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["schema_version", "b", "a"]);
        assert_eq!(entries[0].1, SCHEMA_VERSION.to_string());
        assert!(text.contains("\"model_seconds\": 3"), "{text}");
        assert!(!text.contains("\"model_seconds\": 1,"), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn push_row_with_matches_push_plus_annotate() {
        let mut a = HarnessReport::new("x");
        a.push_row("g", "e", 1.0, 0.5);
        a.annotate("p50", 2.0);
        a.annotate("p99", 3.0);
        let mut b = HarnessReport::new("x");
        b.push_row_with("g", "e", 1.0, 0.5, &[("p50", 2.0), ("p99", 3.0)]);
        assert_eq!(a.rows[0].json(), b.rows[0].json());
    }

    #[test]
    fn git_rev_resolves_in_this_checkout() {
        // The workspace is a git repo; the rev must look like a hash.
        let rev = git_rev().expect("repo has .git");
        assert!(rev.len() >= 7, "{rev}");
        assert!(rev.chars().all(|c| c.is_ascii_hexdigit()), "{rev}");
    }

    #[test]
    fn strings_escape_and_numbers_stay_finite() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_number(1.25), "1.25");
        assert_eq!(json_number(f64::NAN), "null");
    }
}
