//! Shared experiment protocol (Section IV of the paper).
//!
//! "For each dynamic computation, 100 edges are chosen at random to be
//! removed from the graph ... These edges are then reinserted into the
//! graph one at a time and the analytic is updated. We choose k = 256
//! source nodes for approximation of BC, also at random ... For each
//! experiment we compare the results of the baseline and our algorithms
//! to ensure that both yield the same results."
//!
//! [`build_setup`] realizes that protocol (at configurable scale);
//! [`run_cpu`] / [`run_gpu`] execute it on one engine and verify the final
//! state against a from-scratch Brandes run before reporting any number.

use crate::config::Config;
use dynbc_bc::brandes::{brandes_state, sample_sources};
use dynbc_bc::dynamic::{CpuDynamicBc, UpdateResult};
use dynbc_bc::gpu::{Backend, GpuDynamicBc, Parallelism};
use dynbc_gpusim::{CacheConfig, DeviceConfig, ProfileReport};
use dynbc_graph::suite::SuiteEntry;
use dynbc_graph::{Csr, EdgeList, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One prepared experiment: the start graph (suite graph minus the chosen
/// edges), the reinsertion stream, and the source set.
#[derive(Debug, Clone)]
pub struct Setup {
    /// Suite short name.
    pub name: &'static str,
    /// Start graph (full graph with `insertions` removed).
    pub start: EdgeList,
    /// Edges to reinsert, in order.
    pub insertions: Vec<(VertexId, VertexId)>,
    /// BC source vertices.
    pub sources: Vec<VertexId>,
}

impl Setup {
    /// Vertex count.
    pub fn n(&self) -> usize {
        self.start.vertex_count()
    }

    /// Edge count of the start graph.
    pub fn m(&self) -> usize {
        self.start.edge_count()
    }
}

/// Builds the removal/reinsertion experiment for one suite entry.
pub fn build_setup(entry: &SuiteEntry, cfg: &Config) -> Setup {
    let full = entry.generate(cfg.scale, cfg.seed);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xD1CE ^ entry.short.len() as u64);
    let mut idx: Vec<usize> = (0..full.edge_count()).collect();
    idx.shuffle(&mut rng);
    idx.truncate(cfg.insertions.min(full.edge_count()));
    let chosen: Vec<(VertexId, VertexId)> = idx.iter().map(|&i| full.edges()[i]).collect();
    let mut start = full;
    let removed = start.remove_edges(&chosen);
    assert_eq!(removed, chosen.len(), "all chosen edges must be removable");
    let sources = sample_sources(&mut rng, start.vertex_count(), cfg.sources);
    Setup {
        name: entry.short,
        start,
        insertions: chosen,
        sources,
    }
}

/// Result of one dynamic run over the full insertion stream.
#[derive(Debug)]
pub struct DynRun {
    /// Engine label (for tables).
    pub label: String,
    /// Per-insertion outcomes.
    pub per_insertion: Vec<UpdateResult>,
    /// Total modeled seconds across all insertions.
    pub total_model_seconds: f64,
    /// Total host wall seconds spent inside updates (diagnostic).
    pub total_wall_seconds: f64,
}

impl DynRun {
    fn from_results(label: String, per_insertion: Vec<UpdateResult>) -> Self {
        let total_model_seconds = per_insertion.iter().map(|r| r.model_seconds).sum();
        let total_wall_seconds = per_insertion.iter().map(|r| r.wall_seconds).sum();
        Self {
            label,
            per_insertion,
            total_model_seconds,
            total_wall_seconds,
        }
    }

    /// Slowest single-insertion modeled time.
    pub fn slowest(&self) -> f64 {
        self.per_insertion
            .iter()
            .map(|r| r.model_seconds)
            .fold(0.0, f64::max)
    }

    /// Mean single-insertion modeled time.
    pub fn average(&self) -> f64 {
        if self.per_insertion.is_empty() {
            0.0
        } else {
            self.total_model_seconds / self.per_insertion.len() as f64
        }
    }

    /// Fastest single-insertion modeled time.
    pub fn fastest(&self) -> f64 {
        self.per_insertion
            .iter()
            .map(|r| r.model_seconds)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Verifies a final BC state against a from-scratch Brandes recomputation,
/// panicking with context on any mismatch (the paper's every-experiment
/// equality check).
fn verify_final_state(setup: &Setup, bc: &[f64], label: &str) {
    let mut final_graph = setup.start.clone();
    for &(u, v) in &setup.insertions {
        final_graph.insert_edge(u, v);
    }
    let csr = Csr::from_edge_list(&final_graph);
    let fresh = brandes_state(&csr, &setup.sources);
    for (v, (&got, &want)) in bc.iter().zip(&fresh.bc).enumerate() {
        let diff = (got - want).abs();
        let tol = 1e-6 * want.abs().max(1.0);
        assert!(
            diff <= tol,
            "{label}: BC[{v}] = {got} disagrees with recomputation {want}"
        );
    }
}

/// Runs the insertion stream through the sequential CPU engine.
pub fn run_cpu(setup: &Setup) -> DynRun {
    let mut engine = CpuDynamicBc::new(&setup.start, &setup.sources);
    let results: Vec<UpdateResult> = setup
        .insertions
        .iter()
        .map(|&(u, v)| engine.insert_edge(u, v))
        .collect();
    verify_final_state(setup, &engine.state().bc, "cpu");
    DynRun::from_results("CPU (i7-2600K model)".to_string(), results)
}

/// Emits one harness's measured runs to `BENCH_dynbc.json` at the
/// workspace root (merge-by-harness; see [`crate::report`]): one row per
/// `(graph, engine)` cell carrying simulated and wall-clock seconds, plus
/// the host-thread count and git revision. Returns the path written, or
/// `None` when the file could not be written (reporting is best-effort —
/// it must never fail the harness).
pub fn emit_bench_json(harness: &str, runs: &[(&str, &DynRun)]) -> Option<std::path::PathBuf> {
    let mut report = crate::report::HarnessReport::new(harness);
    for (graph, run) in runs {
        report.push_row(
            graph,
            &run.label,
            run.total_model_seconds,
            run.total_wall_seconds,
        );
        report.annotate("updates", run.per_insertion.len() as f64);
        report.annotate("slowest_model_seconds", run.slowest());
    }
    report.write_default()
}

/// Runs the insertion stream through a simulated-GPU engine.
pub fn run_gpu(setup: &Setup, device: DeviceConfig, par: Parallelism) -> DynRun {
    let mut engine = GpuDynamicBc::new(&setup.start, &setup.sources, device, par);
    let results: Vec<UpdateResult> = setup
        .insertions
        .iter()
        .map(|&(u, v)| engine.insert_edge(u, v))
        .collect();
    let snapshot = engine.state_snapshot();
    verify_final_state(setup, &snapshot.bc, &format!("gpu-{par}"));
    DynRun::from_results(format!("GPU {par} ({})", device.name), results)
}

/// Runs the insertion stream through a GPU engine pinned to one
/// execution backend (`DYNBC_BACKEND` notwithstanding), returning the
/// run and the final BC scores — backend benches compare those scores
/// *bitwise*, which the tolerance check in [`run_gpu`] cannot express.
///
/// `threads = 0` keeps the engine's default host-thread count.
pub fn run_gpu_backend(
    setup: &Setup,
    device: DeviceConfig,
    par: Parallelism,
    backend: Backend,
    threads: usize,
) -> (DynRun, Vec<f64>) {
    let mut engine =
        GpuDynamicBc::new(&setup.start, &setup.sources, device, par).with_backend(backend);
    if threads > 0 {
        engine.set_host_threads(threads);
    }
    let results: Vec<UpdateResult> = setup
        .insertions
        .iter()
        .map(|&(u, v)| engine.insert_edge(u, v))
        .collect();
    let snapshot = engine.state_snapshot();
    verify_final_state(setup, &snapshot.bc, &format!("gpu-{par}-{backend}"));
    (
        DynRun::from_results(format!("GPU {par} {backend} ({})", device.name), results),
        snapshot.bc,
    )
}

/// Runs the insertion stream through a simulated-GPU engine with the
/// hardware-counter profiler enabled, returning both the timing run and
/// the accumulated per-kernel [`ProfileReport`].
///
/// Profiling never changes results or modeled time — only what the host
/// records — so the run is verified against Brandes exactly like
/// [`run_gpu`].
pub fn run_gpu_profiled(
    setup: &Setup,
    device: DeviceConfig,
    par: Parallelism,
) -> (DynRun, ProfileReport) {
    let mut engine = GpuDynamicBc::new(&setup.start, &setup.sources, device, par);
    engine.set_profiling(true);
    let results: Vec<UpdateResult> = setup
        .insertions
        .iter()
        .map(|&(u, v)| engine.insert_edge(u, v))
        .collect();
    let snapshot = engine.state_snapshot();
    verify_final_state(setup, &snapshot.bc, &format!("gpu-{par}-profiled"));
    let profile = engine.take_profile_report();
    (
        DynRun::from_results(format!("GPU {par} ({})", device.name), results),
        profile,
    )
}

/// Runs the insertion stream through a simulated-GPU engine with the
/// profiler *and* the dynbc-memsim cache-hierarchy model enabled,
/// returning the timing run, the [`ProfileReport`] (whose counters carry
/// L1/L2 hit/miss/eviction totals and per-buffer miss attribution), and
/// the final BC scores — locality benches compare those scores *bitwise*
/// against memsim-off runs, which the tolerance check cannot express.
///
/// `cache` overrides the modeled geometry (e.g. a deliberately small L2
/// so a reordering experiment's working set exceeds it); `None` keeps
/// the default C2075-flavoured hierarchy. The simulator backend is
/// pinned (`DYNBC_BACKEND` notwithstanding): the cache model only
/// observes simulated lanes, so a native run would report nothing.
pub fn run_gpu_memsim(
    setup: &Setup,
    device: DeviceConfig,
    par: Parallelism,
    cache: Option<CacheConfig>,
) -> (DynRun, ProfileReport, Vec<f64>) {
    let mut engine = GpuDynamicBc::new(&setup.start, &setup.sources, device, par)
        .with_backend(Backend::Simulator);
    engine.set_profiling(true);
    engine.set_memsim(true);
    if let Some(cfg) = cache {
        engine.set_cache_config(cfg);
    }
    let results: Vec<UpdateResult> = setup
        .insertions
        .iter()
        .map(|&(u, v)| engine.insert_edge(u, v))
        .collect();
    let snapshot = engine.state_snapshot();
    verify_final_state(setup, &snapshot.bc, &format!("gpu-{par}-memsim"));
    let profile = engine.take_profile_report();
    (
        DynRun::from_results(format!("GPU {par} ({})", device.name), results),
        profile,
        snapshot.bc,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynbc_graph::suite::entry_by_short;

    fn tiny_cfg() -> Config {
        Config {
            scale: 0.008,
            sources: 4,
            insertions: 5,
            seed: 99,
        }
    }

    #[test]
    fn setup_removes_then_reinserts_the_same_edges() {
        let entry = entry_by_short("small").unwrap();
        let cfg = tiny_cfg();
        let setup = build_setup(entry, &cfg);
        assert_eq!(setup.insertions.len(), 5);
        for &(u, v) in &setup.insertions {
            assert!(!setup.start.contains(u, v), "({u},{v}) should be removed");
        }
        assert_eq!(setup.sources.len(), 4);
    }

    #[test]
    fn setup_is_deterministic() {
        let entry = entry_by_short("pref").unwrap();
        let cfg = tiny_cfg();
        let a = build_setup(entry, &cfg);
        let b = build_setup(entry, &cfg);
        assert_eq!(a.start, b.start);
        assert_eq!(a.insertions, b.insertions);
        assert_eq!(a.sources, b.sources);
    }

    #[test]
    fn cpu_and_gpu_runs_verify_and_agree_on_cases() {
        let entry = entry_by_short("small").unwrap();
        let cfg = tiny_cfg();
        let setup = build_setup(entry, &cfg);
        let cpu = run_cpu(&setup);
        let gpu = run_gpu(&setup, DeviceConfig::test_tiny(), Parallelism::Node);
        assert_eq!(cpu.per_insertion.len(), gpu.per_insertion.len());
        for (rc, rg) in cpu.per_insertion.iter().zip(&gpu.per_insertion) {
            assert_eq!(rc.cases, rg.cases);
        }
        assert!(cpu.total_model_seconds > 0.0);
        assert!(gpu.fastest() <= gpu.average());
        assert!(gpu.average() <= gpu.slowest());
    }

    #[test]
    fn profiled_run_keeps_modeled_time_and_yields_counters() {
        let entry = entry_by_short("small").unwrap();
        let cfg = tiny_cfg();
        let setup = build_setup(entry, &cfg);
        let plain = run_gpu(&setup, DeviceConfig::test_tiny(), Parallelism::Edge);
        let (profiled, profile) =
            run_gpu_profiled(&setup, DeviceConfig::test_tiny(), Parallelism::Edge);
        assert_eq!(
            plain.total_model_seconds.to_bits(),
            profiled.total_model_seconds.to_bits(),
            "profiling must not perturb the machine model"
        );
        assert!(profile.total().edges_scanned > 0);
        assert!(!profile.launches.is_empty());
    }
}
