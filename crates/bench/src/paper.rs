//! The paper's published numbers, for side-by-side reporting.
//!
//! Absolute seconds from the authors' Tesla C2075 / i7-2600K are not
//! expected to match a simulator at reduced scale; the *ratios* and
//! orderings are the reproduction targets, so those are what the
//! harnesses print next to measured values.

/// One row of the paper's Table II.
#[derive(Debug, Clone, Copy)]
pub struct Table2Row {
    /// Graph short name.
    pub graph: &'static str,
    /// Dynamic CPU total over 100 insertions, seconds.
    pub cpu_s: f64,
    /// Dynamic GPU, edge-parallel, seconds.
    pub edge_s: f64,
    /// Dynamic GPU, node-parallel, seconds.
    pub node_s: f64,
}

impl Table2Row {
    /// CPU / edge speedup as published.
    pub fn edge_speedup(&self) -> f64 {
        self.cpu_s / self.edge_s
    }

    /// CPU / node speedup as published.
    pub fn node_speedup(&self) -> f64 {
        self.cpu_s / self.node_s
    }
}

/// Table II of the paper.
pub const TABLE2: [Table2Row; 7] = [
    Table2Row {
        graph: "caida",
        cpu_s: 1749.98,
        edge_s: 84.79,
        node_s: 15.85,
    },
    Table2Row {
        graph: "coPap",
        cpu_s: 1080.81,
        edge_s: 762.81,
        node_s: 20.49,
    },
    Table2Row {
        graph: "del",
        cpu_s: 4762.75,
        edge_s: 4611.52,
        node_s: 196.48,
    },
    Table2Row {
        graph: "eu",
        cpu_s: 3991.27,
        edge_s: 591.20,
        node_s: 71.23,
    },
    Table2Row {
        graph: "kron",
        cpu_s: 1951.86,
        edge_s: 1668.27,
        node_s: 81.54,
    },
    Table2Row {
        graph: "pref",
        cpu_s: 380.77,
        edge_s: 62.73,
        node_s: 10.38,
    },
    Table2Row {
        graph: "small",
        cpu_s: 360.82,
        edge_s: 29.14,
        node_s: 7.20,
    },
];

/// One row of the paper's Table III.
#[derive(Debug, Clone, Copy)]
pub struct Table3Row {
    /// Graph short name.
    pub graph: &'static str,
    /// Static GPU recomputation, seconds.
    pub recompute_s: f64,
    /// Slowest single update, seconds.
    pub slowest_s: f64,
    /// Average update, seconds.
    pub average_s: f64,
    /// Fastest single update, seconds.
    pub fastest_s: f64,
}

/// Table III of the paper.
pub const TABLE3: [Table3Row; 7] = [
    Table3Row {
        graph: "caida",
        recompute_s: 1.99,
        slowest_s: 0.3295,
        average_s: 0.1585,
        fastest_s: 0.0003,
    },
    Table3Row {
        graph: "coPap",
        recompute_s: 31.35,
        slowest_s: 0.7242,
        average_s: 0.2049,
        fastest_s: 0.0003,
    },
    Table3Row {
        graph: "del",
        recompute_s: 99.60,
        slowest_s: 10.8997,
        average_s: 1.9648,
        fastest_s: 0.0003,
    },
    Table3Row {
        graph: "eu",
        recompute_s: 21.40,
        slowest_s: 3.0308,
        average_s: 0.7123,
        fastest_s: 0.0003,
    },
    Table3Row {
        graph: "kron",
        recompute_s: 38.69,
        slowest_s: 1.5658,
        average_s: 0.8154,
        fastest_s: 0.2725,
    },
    Table3Row {
        graph: "pref",
        recompute_s: 1.27,
        slowest_s: 0.5907,
        average_s: 0.1038,
        fastest_s: 0.0603,
    },
    Table3Row {
        graph: "small",
        recompute_s: 0.68,
        slowest_s: 0.0978,
        average_s: 0.0720,
        fastest_s: 0.0350,
    },
];

/// Figure 2's headline statistics.
pub const FIG2_CASE2_SHARE: f64 = 0.373;
/// Share of work-requiring scenarios (Cases 2+3) that are Case 2.
pub const FIG2_CASE2_SHARE_OF_WORK: f64 = 0.735;

/// Figure 4's headline: the largest observed touched fraction.
pub const FIG4_MAX_TOUCHED_FRACTION: f64 = 0.35;

/// Headline claims from the abstract.
pub const MAX_NODE_SPEEDUP_VS_CPU: f64 = 110.0;
/// Average node-parallel update speedup vs GPU recomputation.
pub const AVG_UPDATE_SPEEDUP_VS_RECOMPUTE: f64 = 45.0;

/// Looks up the Table II row for a graph short name.
pub fn table2_row(graph: &str) -> Option<&'static Table2Row> {
    TABLE2.iter().find(|r| r.graph == graph)
}

/// Looks up the Table III row for a graph short name.
pub fn table3_row(graph: &str) -> Option<&'static Table3Row> {
    TABLE3.iter().find(|r| r.graph == graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_speedups_match_the_paper_text() {
        // caida node speedup is the abstract's 110x headline.
        let caida = table2_row("caida").unwrap();
        assert!((caida.node_speedup() - 110.41).abs() < 0.05);
        // del's edge-parallel collapse to ~1x.
        let del = table2_row("del").unwrap();
        assert!((del.edge_speedup() - 1.03).abs() < 0.01);
    }

    #[test]
    fn node_beats_edge_in_every_published_row() {
        for row in &TABLE2 {
            assert!(row.node_s < row.edge_s, "{}", row.graph);
        }
    }

    #[test]
    fn every_published_update_beats_recomputation() {
        for row in &TABLE3 {
            assert!(row.slowest_s < row.recompute_s, "{}", row.graph);
            assert!(row.fastest_s <= row.average_s);
            assert!(row.average_s <= row.slowest_s);
        }
    }
}
