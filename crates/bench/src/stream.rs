//! NetworKit-shaped edge-event streams for the service and batch
//! harnesses.
//!
//! Mirrors the `removeAndAddEdges` protocol of the NetworKit dynamic-BC
//! experiment scripts: pick random existing edges that are in neither a
//! *tabu* set (edges the experiment must keep, e.g. a spanning tree so
//! the graph stays connected) nor already picked, emit an
//! `EDGE_REMOVAL` stream over them, and an `EDGE_ADDITION` stream that
//! re-inserts the same edges. [`remove_then_add`] reproduces the
//! script's two-phase shape; [`interleaved`] laces the two streams with
//! a fixed lag so removal and re-addition churn concurrently — the
//! client workload a serving shard sees.
//!
//! All generation is deterministic from the caller's seeded RNG, and
//! every produced stream is validated to be sequentially applicable
//! (each removal hits a present edge, each addition an absent one), so
//! harnesses can feed any prefix or batching of it to `apply_batch`.

use std::collections::BTreeSet;

use dynbc_bc::BcState;
use dynbc_graph::{DynGraph, EdgeList, EdgeOp, VertexId};
use rand::rngs::StdRng;
use rand::Rng;

/// Canonical `(min, max)` form of an undirected edge.
fn canon(u: VertexId, v: VertexId) -> (VertexId, VertexId) {
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}

/// A BFS spanning forest of `el` as a tabu set: removing any non-tabu
/// edge leaves every component connected, matching the scripts' use of
/// a spanning tree as the tabu graph.
pub fn spanning_forest_tabu(el: &EdgeList) -> BTreeSet<(VertexId, VertexId)> {
    let n = el.vertex_count();
    let mut adj = vec![Vec::new(); n];
    for &(u, v) in el.edges() {
        adj[u as usize].push(v);
        adj[v as usize].push(u);
    }
    let mut seen = vec![false; n];
    let mut tabu = BTreeSet::new();
    let mut queue = std::collections::VecDeque::new();
    for root in 0..n {
        if seen[root] {
            continue;
        }
        seen[root] = true;
        queue.push_back(root as VertexId);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u as usize] {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    tabu.insert(canon(u, v));
                    queue.push_back(v);
                }
            }
        }
    }
    tabu
}

/// Samples `count` distinct removable edges (present, not tabu) in
/// random order — the scripts' rejection loop, made deterministic by
/// the caller's seeded RNG.
///
/// # Panics
/// Panics if fewer than `count` non-tabu edges exist.
fn sample_removable(
    el: &EdgeList,
    count: usize,
    tabu: &BTreeSet<(VertexId, VertexId)>,
    rng: &mut StdRng,
) -> Vec<(VertexId, VertexId)> {
    let mut pool: Vec<(VertexId, VertexId)> = el
        .edges()
        .iter()
        .copied()
        .filter(|e| !tabu.contains(e))
        .collect();
    assert!(
        pool.len() >= count,
        "stream wants {count} removable edges, graph has {}",
        pool.len()
    );
    // Partial Fisher-Yates: the first `count` slots are a uniform
    // without-replacement sample.
    for i in 0..count {
        let j = rng.gen_range(i..pool.len());
        pool.swap(i, j);
    }
    pool.truncate(count);
    pool
}

/// The scripts' two-phase protocol: a removal stream over `count`
/// random non-tabu edges, and an addition stream re-inserting them in
/// the same order. Apply all removals (in any batching), then all
/// additions.
pub fn remove_then_add(
    el: &EdgeList,
    count: usize,
    tabu: &BTreeSet<(VertexId, VertexId)>,
    rng: &mut StdRng,
) -> (Vec<EdgeOp>, Vec<EdgeOp>) {
    let picked = sample_removable(el, count, tabu, rng);
    let removals: Vec<EdgeOp> = picked.iter().map(|&(u, v)| EdgeOp::Remove(u, v)).collect();
    let additions: Vec<EdgeOp> = picked.iter().map(|&(u, v)| EdgeOp::Insert(u, v)).collect();
    let all: Vec<EdgeOp> = removals.iter().chain(additions.iter()).copied().collect();
    validate_stream(el, &all);
    (removals, additions)
}

/// One interleaved stream: each picked edge's removal is followed,
/// `lag` events later, by its re-addition (`lag >= 1`), so removal and
/// addition churn overlap the way a live client stream does. The
/// stream has `2 * count` events and is sequentially valid from `el`.
pub fn interleaved(
    el: &EdgeList,
    count: usize,
    lag: usize,
    tabu: &BTreeSet<(VertexId, VertexId)>,
    rng: &mut StdRng,
) -> Vec<EdgeOp> {
    let lag = lag.max(1);
    let picked = sample_removable(el, count, tabu, rng);
    let mut ops = Vec::with_capacity(2 * count);
    for (i, &(u, v)) in picked.iter().enumerate() {
        ops.push(EdgeOp::Remove(u, v));
        if i + 1 >= lag {
            let (a, b) = picked[i + 1 - lag];
            ops.push(EdgeOp::Insert(a, b));
        }
    }
    for &(u, v) in &picked[count.saturating_sub(lag - 1)..] {
        ops.push(EdgeOp::Insert(u, v));
    }
    validate_stream(el, &ops);
    ops
}

/// Asserts `ops` applies cleanly from `el` one op at a time — the
/// guarantee that lets harnesses batch any prefix of the stream.
fn validate_stream(el: &EdgeList, ops: &[EdgeOp]) {
    let mut g = el.clone();
    for &op in ops.iter() {
        match op {
            EdgeOp::Remove(u, v) => {
                assert_eq!(
                    g.remove_edges(&[(u, v)]),
                    1,
                    "removal of absent edge {u}-{v}"
                )
            }
            EdgeOp::Insert(u, v) => {
                assert!(g.insert_edge(u, v), "insertion of present edge {u}-{v}")
            }
        }
    }
}

/// Up to `count` insertions that preserve every source's BFS distances
/// (both endpoints reachable and within one level for every source):
/// all Case 1/2 ops, so whole batches fuse into single stages — the
/// best case the batch API targets. Used by the `batch_throughput`
/// microbench and the service bench's raw baseline.
///
/// # Panics
/// Panics if the graph is too sparse in same-level pairs to supply
/// `count` such edges.
pub fn fusable_insertions(el: &EdgeList, state: &BcState, count: usize) -> Vec<EdgeOp> {
    let n = el.vertex_count() as u32;
    let mut probe = DynGraph::from_edge_list(el);
    let mut ops = Vec::with_capacity(count);
    'outer: for a in 0..n {
        for b in (a + 1)..n {
            if probe.has_edge(a, b) {
                continue;
            }
            let fusable = state.d.iter().all(|row| {
                row[a as usize] != u32::MAX
                    && row[b as usize] != u32::MAX
                    && row[a as usize].abs_diff(row[b as usize]) <= 1
            });
            if fusable {
                assert!(probe.insert_edge(a, b));
                ops.push(EdgeOp::Insert(a, b));
                if ops.len() == count {
                    break 'outer;
                }
            }
        }
    }
    assert_eq!(ops.len(), count, "graph too sparse in same-level pairs");
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynbc_graph::gen;
    use rand::SeedableRng;

    fn graph() -> EdgeList {
        let mut rng = StdRng::seed_from_u64(7);
        gen::ba(&mut rng, 80, 3)
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let el = graph();
        let tabu = spanning_forest_tabu(&el);
        let a = interleaved(&el, 20, 3, &tabu, &mut StdRng::seed_from_u64(42));
        let b = interleaved(&el, 20, 3, &tabu, &mut StdRng::seed_from_u64(42));
        let c = interleaved(&el, 20, 3, &tabu, &mut StdRng::seed_from_u64(43));
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should pick different edges");
        assert_eq!(a.len(), 40);
    }

    #[test]
    fn interleaved_respects_the_lag() {
        let el = graph();
        let tabu = spanning_forest_tabu(&el);
        let ops = interleaved(&el, 10, 4, &tabu, &mut StdRng::seed_from_u64(1));
        // Each edge's removal index precedes its addition index.
        for (i, &op) in ops.iter().enumerate() {
            if let EdgeOp::Insert(u, v) = op {
                let removal = ops[..i]
                    .iter()
                    .position(|&o| o == EdgeOp::Remove(u, v))
                    .expect("addition before its removal");
                assert!(removal < i);
            }
        }
    }

    #[test]
    fn remove_then_add_round_trips_the_graph() {
        let el = graph();
        let tabu = spanning_forest_tabu(&el);
        let (removals, additions) = remove_then_add(&el, 15, &tabu, &mut StdRng::seed_from_u64(5));
        let mut g = el.clone();
        for op in removals.iter().chain(additions.iter()) {
            match *op {
                EdgeOp::Remove(u, v) => assert_eq!(g.remove_edges(&[(u, v)]), 1),
                EdgeOp::Insert(u, v) => assert!(g.insert_edge(u, v)),
            }
        }
        assert_eq!(g, el, "remove-then-add must restore the original graph");
    }

    #[test]
    fn tabu_edges_are_never_removed() {
        let el = graph();
        let tabu = spanning_forest_tabu(&el);
        let ops = interleaved(&el, 25, 1, &tabu, &mut StdRng::seed_from_u64(9));
        for op in &ops {
            if let EdgeOp::Remove(u, v) = *op {
                assert!(!tabu.contains(&canon(u, v)), "tabu edge {u}-{v} removed");
            }
        }
    }

    #[test]
    fn spanning_forest_spans_connected_graphs() {
        let el = graph();
        let tabu = spanning_forest_tabu(&el);
        // BA graphs are connected: a spanning tree has n-1 edges.
        assert_eq!(tabu.len(), el.vertex_count() - 1);
    }
}
