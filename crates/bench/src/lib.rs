//! Experiment harnesses for reproducing every table and figure of
//! McLaughlin & Bader (IPDPS Workshops 2014).
//!
//! Each `benches/*.rs` target regenerates one artifact:
//!
//! | Target | Artifact | Claim it checks |
//! |---|---|---|
//! | `fig1_blocks` | Figure 1 | static-BC speedup peaks at one block per SM |
//! | `fig2_cases` | Figure 2 | Case 2 dominates the work-requiring scenarios |
//! | `table2_cpu_vs_gpu` | Table II | node ≫ edge ≥ CPU for dynamic updates |
//! | `table3_update_vs_recompute` | Table III | even the slowest update beats recomputation |
//! | `fig4_touched` | Figure 4 | updates touch a tiny fraction of the graph |
//! | `ablation` | (ours) | design choices: dedup strategy, incremental-vs-pull Case 2 |
//! | `fig_futile_work` | (ours) | profiler counters: node-parallel futile-edge ratio < edge-parallel on every graph |
//! | `fig1_touched_fraction` | Figure 1 (ours, via telemetry) | median per-insertion touched fraction < 10% of |V| on every graph |
//! | `cache_model` | (ours, via memsim) | node-parallel L1 hit rate > edge-parallel on every graph; degree-sorted CSR lifts the small-L2 hit rate |
//! | `micro` | (ours) | Criterion microbenches of the substrate |
//!
//! Scale defaults are reduced so the suite finishes on one CPU core;
//! `DYNBC_SCALE`, `DYNBC_SOURCES`, `DYNBC_INSERTIONS`, and `DYNBC_SEED`
//! environment variables scale toward paper size. Absolute numbers are
//! *simulated* seconds from the `dynbc-gpusim` machine model; the claims
//! under reproduction are ratio and ordering claims.

pub mod config;
pub mod driver;
pub mod paper;
pub mod report;
pub mod stream;
pub mod table;

pub use config::Config;
pub use driver::{
    build_setup, emit_bench_json, run_cpu, run_gpu, run_gpu_backend, run_gpu_memsim,
    run_gpu_profiled, DynRun, Setup,
};
pub use report::HarnessReport;
