//! Environment-driven experiment sizing.

/// Experiment knobs, resolved from the environment with per-harness
/// defaults.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Multiplier on the suite's default vertex counts (`DYNBC_SCALE`).
    pub scale: f64,
    /// Number of BC sources, the paper's `k` (`DYNBC_SOURCES`; paper: 256).
    pub sources: usize,
    /// Number of removed-then-reinserted edges (`DYNBC_INSERTIONS`;
    /// paper: 100).
    pub insertions: usize,
    /// Master seed (`DYNBC_SEED`).
    pub seed: u64,
}

impl Config {
    /// Builds a config with the given defaults, each overridable from the
    /// environment.
    pub fn from_env(default_scale: f64, default_sources: usize, default_insertions: usize) -> Self {
        Self {
            scale: env_parse("DYNBC_SCALE", default_scale),
            sources: env_parse("DYNBC_SOURCES", default_sources),
            insertions: env_parse("DYNBC_INSERTIONS", default_insertions),
            seed: env_parse("DYNBC_SEED", 20140519), // IPDPS 2014's week
        }
    }

    /// A one-line description for harness headers.
    pub fn describe(&self) -> String {
        format!(
            "scale={} sources={} insertions={} seed={}",
            self.scale, self.sources, self.insertions, self.seed
        )
    }
}

fn env_parse<T: std::str::FromStr + Copy>(key: &str, default: T) -> T {
    match std::env::var(key) {
        Ok(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("warning: could not parse {key}={v:?}; using default");
            default
        }),
        Err(_) => default,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_apply_without_env() {
        // (Does not set env vars: tests run in parallel and the vars are
        // process-global.)
        let c = Config::from_env(0.25, 8, 10);
        if std::env::var("DYNBC_SCALE").is_err() {
            assert_eq!(c.scale, 0.25);
        }
        if std::env::var("DYNBC_SOURCES").is_err() {
            assert_eq!(c.sources, 8);
        }
        assert!(c.describe().contains("seed="));
    }
}
