//! Environment-driven experiment sizing.
//!
//! All knob names come from the central registry
//! ([`dynbc_gpusim::knob`]) and are parsed with its shared
//! [`parse_from_env`](dynbc_gpusim::knob::parse_from_env) helper, so a
//! typo'd variable name cannot silently fall back to defaults — the
//! `dynbc-lint` `knob-registry` rule rejects raw `DYNBC_*` string
//! literals outside the registry.

use dynbc_gpusim::knob::{self, INSERTIONS_ENV, SCALE_ENV, SEED_ENV, SOURCES_ENV};

/// Experiment knobs, resolved from the environment with per-harness
/// defaults.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Multiplier on the suite's default vertex counts ([`SCALE_ENV`]).
    pub scale: f64,
    /// Number of BC sources, the paper's `k` ([`SOURCES_ENV`]; paper: 256).
    pub sources: usize,
    /// Number of removed-then-reinserted edges ([`INSERTIONS_ENV`];
    /// paper: 100).
    pub insertions: usize,
    /// Master seed ([`SEED_ENV`]).
    pub seed: u64,
}

impl Config {
    /// Builds a config with the given defaults, each overridable from the
    /// environment.
    pub fn from_env(default_scale: f64, default_sources: usize, default_insertions: usize) -> Self {
        Self {
            scale: knob::parse_from_env(SCALE_ENV, default_scale),
            sources: knob::parse_from_env(SOURCES_ENV, default_sources),
            insertions: knob::parse_from_env(INSERTIONS_ENV, default_insertions),
            seed: knob::parse_from_env(SEED_ENV, 20140519), // IPDPS 2014's week
        }
    }

    /// A one-line description for harness headers.
    pub fn describe(&self) -> String {
        format!(
            "scale={} sources={} insertions={} seed={}",
            self.scale, self.sources, self.insertions, self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_apply_without_env() {
        // (Does not set env vars: tests run in parallel and the vars are
        // process-global.)
        let c = Config::from_env(0.25, 8, 10);
        if std::env::var(SCALE_ENV).is_err() {
            assert_eq!(c.scale, 0.25);
        }
        if std::env::var(SOURCES_ENV).is_err() {
            assert_eq!(c.sources, 8);
        }
        assert!(c.describe().contains("seed="));
    }
}
