//! Minimal fixed-width table printing for harness output.

/// A left-aligned fixed-width text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                out.extend(std::iter::repeat_n(' ', widths[c] - cell.len()));
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.extend(std::iter::repeat_n('-', total));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

/// Formats seconds with sensible precision across magnitudes.
pub fn fmt_seconds(s: f64) -> String {
    if s == 0.0 {
        "0".to_string()
    } else if s < 1e-4 {
        format!("{:.1}us", s * 1e6)
    } else if s < 0.1 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.3}s")
    }
}

/// Formats a speedup ratio.
pub fn fmt_speedup(x: f64) -> String {
    if x >= 1000.0 {
        format!("{x:.0}x")
    } else if x >= 10.0 {
        format!("{x:.1}x")
    } else {
        format!("{x:.2}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["Graph", "Time"]);
        t.row(vec!["caida", "1.5s"]);
        t.row(vec!["coPapersCiteseer", "2s"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Graph"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "Time" column starts at the same offset.
        let off0 = lines[0].find("Time").unwrap();
        let off2 = lines[2].find("1.5s").unwrap();
        assert_eq!(off0, off2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["A", "B", "C"]);
        t.row(vec!["x"]);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn second_formatting() {
        assert_eq!(fmt_seconds(0.0), "0");
        assert_eq!(fmt_seconds(5e-6), "5.0us");
        assert_eq!(fmt_seconds(0.05), "50.00ms");
        assert_eq!(fmt_seconds(2.0), "2.000s");
        assert_eq!(fmt_speedup(2.345), "2.35x");
        assert_eq!(fmt_speedup(45.6), "45.6x");
        assert_eq!(fmt_speedup(6095.0), "6095x");
    }
}
