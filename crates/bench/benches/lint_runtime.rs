//! `lint_runtime` — times a full-workspace `dynbc-lint` scan.
//!
//! The lint runs as a `verify.sh` gate ahead of every expensive build, so
//! its cost is part of the edit-verify loop. This harness measures a full
//! scan of the tree, asserts the tree is clean, and asserts the scan stays
//! interactive (well under a few seconds), recording the numbers as the
//! `lint_runtime` entry of `BENCH_dynbc.json`.

use std::time::Instant;

use dynbc_bench::report::HarnessReport;

/// Hard ceiling on a full-workspace scan, in seconds. The gate exists to
/// catch an accidentally quadratic rule, not to police machine speed, so
/// it is deliberately loose next to the observed runtime (tens of ms).
const MAX_SCAN_SECONDS: f64 = 5.0;

fn main() {
    let root = dynbc_lint::find_workspace_root(&std::env::current_dir().expect("current dir"))
        .expect("workspace root");

    // Warm the page cache so the measured runs time the analysis, not
    // first-touch disk reads.
    let warm = dynbc_lint::lint_workspace(&root).expect("workspace scan");
    assert!(
        warm.is_clean(),
        "lint_runtime requires a clean tree:\n{}",
        warm.human()
    );

    const RUNS: usize = 5;
    let mut secs = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let t0 = Instant::now();
        let rep = dynbc_lint::lint_workspace(&root).expect("workspace scan");
        secs.push(t0.elapsed().as_secs_f64());
        assert!(rep.is_clean(), "tree went dirty mid-bench");
    }
    let best = secs.iter().cloned().fold(f64::INFINITY, f64::min);
    let worst = secs.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        worst < MAX_SCAN_SECONDS,
        "full-workspace lint took {worst:.3}s (limit {MAX_SCAN_SECONDS}s)"
    );

    println!(
        "lint_runtime: {} files, {} lines, best {:.1} ms / worst {:.1} ms over {} runs (limit {}s)",
        warm.files_scanned,
        warm.lines_scanned,
        best * 1e3,
        worst * 1e3,
        RUNS,
        MAX_SCAN_SECONDS
    );

    let mut report = HarnessReport::new("lint_runtime");
    report.push_row_with(
        "workspace",
        "dynbc-lint",
        0.0,
        best,
        &[
            ("files_scanned", warm.files_scanned as f64),
            ("lines_scanned", warm.lines_scanned as f64),
            ("findings", warm.findings.len() as f64),
            ("worst_wall_seconds", worst),
            ("limit_seconds", MAX_SCAN_SECONDS),
        ],
    );
    if let Some(path) = report.write_default() {
        println!("lint_runtime: wrote {}", path.display());
    }
}
