//! Adaptive hybrid CPU/GPU routing: per-update backend selection.
//!
//! The paper's Figure 1 observation — the median Case 2 update touches
//! well under 10 % of |V| — means most updates are too small to be worth
//! fanning out over host threads (the spawn alone costs more than the
//! work), while the occasional relocation wants every core. The hybrid
//! backend routes each stage on a predicted touched footprint (online
//! EWMA keyed on case and root distance). This harness asserts the
//! routing claims on a caida insertion stream of mostly-Case-2 updates:
//! the median Case 2 update goes down the sequential CPU path, both
//! paths are exercised, results stay bit-identical, and the hybrid run
//! beats *both* pure backends on wall clock.

use dynbc_bc::gpu::{Backend, GpuDynamicBc, Parallelism};
use dynbc_bench::table::{fmt_seconds, fmt_speedup, Table};
use dynbc_bench::{build_setup, emit_bench_json, run_gpu_backend, Config, DynRun};
use dynbc_gpusim::DeviceConfig;
use dynbc_graph::suite::entry_by_short;

fn main() {
    // Small caida (n ≈ 2.4k) with few sources: per-update work is tiny,
    // which is exactly the regime where routing matters. 60 updates give
    // the estimator room to learn and average out scheduler noise.
    let cfg = Config::from_env(0.1, 8, 60);
    let device = DeviceConfig::tesla_c2075();
    let entry = entry_by_short("caida").expect("caida is in the suite");
    let setup = build_setup(entry, &cfg);
    println!(
        "== hybrid routing: adaptive CPU-vs-native per update \
         ({}; caida n={} m={}; device = {}) ==\n",
        cfg.describe(),
        setup.n(),
        setup.m(),
        device.name
    );

    let (sim, sim_bc) = run_gpu_backend(&setup, device, Parallelism::Node, Backend::Simulator, 0);
    let (native, _) = run_gpu_backend(&setup, device, Parallelism::Node, Backend::Native, 0);
    let (hybrid, hybrid_bc) =
        run_gpu_backend(&setup, device, Parallelism::Node, Backend::Hybrid, 0);
    assert!(
        sim_bc
            .iter()
            .zip(&hybrid_bc)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "routing must be invisible in the results"
    );

    // Replay the same stream with per-update router attribution: the
    // counter delta around each insertion says which path its stages
    // took. Case 2 updates (adjacent work, no relocation) are the
    // paper's common case — the router should keep their median on the
    // sequential CPU path once the estimator has seen a few.
    let mut router = GpuDynamicBc::new(&setup.start, &setup.sources, device, Parallelism::Node)
        .with_backend(Backend::Hybrid);
    let mut case2_total = 0u64;
    let mut case2_cpu = 0u64;
    for &(u, v) in &setup.insertions {
        let cpu_before = router.router_cpu_stages();
        let native_before = router.router_native_stages();
        let r = router.insert_edge(u, v);
        if r.cases.distant == 0 && r.cases.adjacent > 0 {
            case2_total += 1;
            if router.router_cpu_stages() > cpu_before
                && router.router_native_stages() == native_before
            {
                case2_cpu += 1;
            }
        }
    }
    let cpu_stages = router.router_cpu_stages();
    let native_stages = router.router_native_stages();

    let mut table = Table::new(vec!["Backend", "Wall", "vs hybrid"]);
    for run in [&sim, &native, &hybrid] {
        table.row(vec![
            run.label.clone(),
            fmt_seconds(run.total_wall_seconds),
            fmt_speedup(run.total_wall_seconds / hybrid.total_wall_seconds),
        ]);
    }
    println!("{}", table.render());
    println!(
        "router: {cpu_stages} stages -> sequential CPU path, \
         {native_stages} -> parallel native; \
         {case2_cpu}/{case2_total} Case 2 updates stayed on the CPU path"
    );
    let rows: Vec<(&str, &DynRun)> = [&sim, &native, &hybrid]
        .iter()
        .map(|r| ("caida", *r))
        .collect();
    if let Some(path) = emit_bench_json("hybrid_routing", &rows) {
        println!("machine-readable rows appended to {}", path.display());
    }

    let both_paths = cpu_stages > 0 && native_stages > 0;
    let median_case2_on_cpu = case2_cpu * 2 >= case2_total && case2_total > 0;
    let beats_native = hybrid.total_wall_seconds < native.total_wall_seconds;
    let beats_sim = hybrid.total_wall_seconds < sim.total_wall_seconds;
    println!(
        "\nrouting check: both paths exercised = {both_paths}; \
         median Case 2 on CPU path = {median_case2_on_cpu}; \
         hybrid beats native = {beats_native}; hybrid beats sim = {beats_sim} => {}",
        if both_paths && median_case2_on_cpu && beats_native && beats_sim {
            "PASS"
        } else {
            "FAIL"
        }
    );
    assert!(
        both_paths && median_case2_on_cpu && beats_native && beats_sim,
        "hybrid routing contract did not hold"
    );
}
