//! Table II: dynamic CPU vs dynamic GPU (edge- and node-parallel) across
//! the benchmark suite.
//!
//! The paper's numbers (Tesla C2075 vs one i7-2600K core, 100 insertions,
//! k = 256): node-parallel wins everywhere, up to 110×; edge-parallel
//! ranges from 20.6× (caida) down to 1.03× (delaunay — its many BFS
//! levels each rescan all |E| arcs). Shape checks: node beats edge on
//! every graph, node beats the CPU by a large factor everywhere, and
//! edge's advantage over the CPU collapses on the mesh.

use dynbc_bc::gpu::{Backend, Parallelism};
use dynbc_bench::table::{fmt_seconds, fmt_speedup, Table};
use dynbc_bench::{
    build_setup, emit_bench_json, paper, run_cpu, run_gpu, run_gpu_backend, Config, DynRun,
};
use dynbc_gpusim::DeviceConfig;
use dynbc_graph::suite::TABLE_I;

fn main() {
    let cfg = Config::from_env(0.35, 24, 20);
    let device = DeviceConfig::tesla_c2075();
    println!(
        "== Table II: dynamic CPU vs dynamic GPU ({}; device = {}) ==\n",
        cfg.describe(),
        device.name
    );

    let mut table = Table::new(vec![
        "Graph",
        "CPU (model)",
        "GPU Edge",
        "Edge speedup",
        "GPU Node",
        "Node speedup",
        "paper E/N",
    ]);
    let mut node_beats_edge_everywhere = true;
    let mut min_node_speedup = f64::INFINITY;
    let mut max_node_speedup: f64 = 0.0;
    let mut edge_speedups = Vec::new();
    let mut measured: Vec<(&str, DynRun)> = Vec::new();
    let mut wall_table = Table::new(vec![
        "Graph",
        "Node sim wall",
        "Node native wall",
        "Node hybrid wall",
    ]);
    for entry in &TABLE_I {
        let setup = build_setup(entry, &cfg);
        eprintln!(
            "[table2] {}: n={} m={} ... ",
            entry.short,
            setup.n(),
            setup.m()
        );
        let cpu = run_cpu(&setup);
        let edge = run_gpu(&setup, device, Parallelism::Edge);
        let node = run_gpu(&setup, device, Parallelism::Node);
        let edge_speedup = cpu.total_model_seconds / edge.total_model_seconds;
        let node_speedup = cpu.total_model_seconds / node.total_model_seconds;
        node_beats_edge_everywhere &= node.total_model_seconds < edge.total_model_seconds;
        min_node_speedup = min_node_speedup.min(node_speedup);
        max_node_speedup = max_node_speedup.max(node_speedup);
        edge_speedups.push((entry.short, edge_speedup));
        let p = paper::table2_row(entry.short).unwrap();
        table.row(vec![
            entry.short.to_string(),
            fmt_seconds(cpu.total_model_seconds),
            fmt_seconds(edge.total_model_seconds),
            fmt_speedup(edge_speedup),
            fmt_seconds(node.total_model_seconds),
            fmt_speedup(node_speedup),
            format!(
                "{} / {}",
                fmt_speedup(p.edge_speedup()),
                fmt_speedup(p.node_speedup())
            ),
        ]);
        // Serving-speed rows: the same node-parallel stream on the
        // native and hybrid backends (identical results, no model
        // clock — wall time is the number that matters there).
        let (native, _) = run_gpu_backend(&setup, device, Parallelism::Node, Backend::Native, 0);
        let (hybrid, _) = run_gpu_backend(&setup, device, Parallelism::Node, Backend::Hybrid, 0);
        wall_table.row(vec![
            entry.short.to_string(),
            fmt_seconds(node.total_wall_seconds),
            fmt_seconds(native.total_wall_seconds),
            fmt_seconds(hybrid.total_wall_seconds),
        ]);
        measured.push((entry.short, cpu));
        measured.push((entry.short, edge));
        measured.push((entry.short, node));
        measured.push((entry.short, native));
        measured.push((entry.short, hybrid));
    }
    println!("{}", table.render());
    println!("host wall-clock of the node-parallel stream per backend:");
    println!("{}", wall_table.render());
    let rows: Vec<(&str, &DynRun)> = measured.iter().map(|(g, r)| (*g, r)).collect();
    if let Some(path) = emit_bench_json("table2_cpu_vs_gpu", &rows) {
        println!("machine-readable rows appended to {}", path.display());
    }
    println!(
        "paper headline: node up to {:.0}x over CPU; node > edge on all graphs",
        paper::MAX_NODE_SPEEDUP_VS_CPU
    );

    // Shape checks.
    let del_edge = edge_speedups
        .iter()
        .find(|(g, _)| *g == "del")
        .map(|&(_, s)| s)
        .unwrap();
    let best_edge = edge_speedups.iter().map(|&(_, s)| s).fold(0.0, f64::max);
    let ok = node_beats_edge_everywhere
        && min_node_speedup > 3.0
        && max_node_speedup > 15.0
        && del_edge < best_edge / 3.0;
    println!(
        "\npaper-shape check: node<edge time on all graphs = {node_beats_edge_everywhere}; \
         node speedup range {:.1}x..{:.1}x (paper 23.9x..110.4x); \
         edge speedup collapses on del ({:.2}x vs best {:.1}x) => {}",
        min_node_speedup,
        max_node_speedup,
        del_edge,
        best_edge,
        if ok { "PASS" } else { "FAIL" }
    );
    assert!(ok, "Table II shape did not reproduce");
}
