//! Cache-model figure (ours): the paper's locality story, restated in
//! L1/L2 hit rates by the dynbc-memsim cache hierarchy.
//!
//! Two experiments per suite graph, both driven by the Section-IV
//! removal/reinsertion protocol:
//!
//! 1. **Decomposition locality** (Fermi prefer-L1 geometry: the C2075
//!    can split its 64 KiB SRAM as 48 KiB L1 / 16 KiB shared via
//!    `cudaFuncCachePreferL1`, and at that size the compact region a
//!    dynamic update touches fits in cache): edge-parallel rescans the
//!    whole arc list every BFS level — a stream whose spatial locality
//!    is already absorbed by warp coalescing, leaving the L1 little to
//!    hit — while node-parallel walks only frontier adjacency,
//!    revisiting the same compact rows and queue slots. Shape check:
//!    node-parallel L1 hit rate strictly above edge-parallel on
//!    **every** graph.
//!
//! 2. **Degree-sorted CSR reordering** (node-parallel, deliberately
//!    small 64 KiB L2 so the per-source working set cannot just sit in
//!    cache): relabeling vertices by descending degree packs the hub
//!    rows — the ones every traversal touches — into a dense prefix of
//!    the address space, so a hot entry no longer drags a 128 B line of
//!    cold neighbours in with it. Our skewed generators (pref, kron,
//!    caida) already hand hubs low ids, so their natural layout is
//!    close to degree-sorted and the gain is ~0 there; the families
//!    whose labels are uncorrelated with degree (delaunay's point
//!    order, above all) are where the reordering has room to win.
//!    Shape check: at least one suite graph improves its L2 hit rate
//!    measurably (≥ 0.01 absolute), and the model stays
//!    observability-only — BC bits with memsim on equal memsim off for
//!    both layouts, and the two layouts agree on every vertex's score
//!    modulo the relabeling.
//!
//! Emits one `cache_model` section to `BENCH_dynbc.json`: per-graph
//! rows for both decompositions (experiment 1) and both layouts
//! (experiment 2) carrying hit rates, request/eviction volumes, and
//! hot-buffer attribution.

use dynbc_bc::gpu::{Backend, Parallelism};
use dynbc_bench::table::Table;
use dynbc_bench::{build_setup, run_gpu_backend, run_gpu_memsim, Config, HarnessReport, Setup};
use dynbc_gpusim::{CacheConfig, CacheCounters, DeviceConfig, ProfileReport};
use dynbc_graph::suite::TABLE_I;
use dynbc_graph::{EdgeList, VertexId};

/// The Fermi prefer-L1 split for the decomposition experiment: 48 KiB
/// L1 (the `cudaFuncCachePreferL1` configuration of the C2075's 64 KiB
/// per-SM SRAM), default L2. At the default 16 KiB the update's touched
/// region overflows the L1 for *both* decompositions and their hit
/// rates converge toward the compulsory-miss floor.
fn prefer_l1() -> CacheConfig {
    CacheConfig {
        l1_kb: 48,
        ..CacheConfig::default()
    }
}

/// The deliberately small L2 for the reordering experiment: default L1,
/// but a 64 KiB L2 the per-source working set of every suite graph at
/// bench scale overflows — at the default 768 KiB the natural layout
/// already fits and reordering has nothing to win.
fn small_l2() -> CacheConfig {
    CacheConfig {
        l2_kb: 64,
        ..CacheConfig::default()
    }
}

/// `new_id[old]` relabeling vertices by descending degree (ties by old
/// id, so the permutation is deterministic). Hubs get the lowest ids
/// and therefore the lowest addresses in every per-vertex device buffer
/// and the front of the CSR adjacency array.
fn degree_sort_permutation(el: &EdgeList) -> Vec<VertexId> {
    let deg = el.degrees();
    let mut order: Vec<VertexId> = (0..el.vertex_count() as VertexId).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(deg[v as usize]), v));
    let mut new_id = vec![0 as VertexId; order.len()];
    for (rank, &old) in order.iter().enumerate() {
        new_id[old as usize] = rank as VertexId;
    }
    new_id
}

/// The same experiment on the isomorphic degree-sorted graph: start
/// edges, insertion stream, and source set all mapped through `new_id`.
fn relabel(setup: &Setup, new_id: &[VertexId]) -> Setup {
    let map = |&(u, v): &(VertexId, VertexId)| (new_id[u as usize], new_id[v as usize]);
    Setup {
        name: setup.name,
        start: EdgeList::from_pairs(
            setup.start.vertex_count(),
            setup.start.edges().iter().map(map),
        ),
        insertions: setup.insertions.iter().map(map).collect(),
        sources: setup.sources.iter().map(|&s| new_id[s as usize]).collect(),
    }
}

/// Hottest buffer by attributed L1 misses (deterministic tie-break).
fn hottest(report: &ProfileReport) -> (String, u64) {
    let mut hot = report.buffer_totals();
    hot.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    hot.into_iter().next().unwrap_or(("none".to_string(), 0))
}

fn annotate_cache(report: &mut HarnessReport, c: &CacheCounters) {
    report.annotate("l1_hit_rate", c.l1_hit_rate());
    report.annotate("l2_hit_rate", c.l2_hit_rate());
    report.annotate("l1_requests", c.l1_requests() as f64);
    report.annotate("l2_requests", c.l2_requests() as f64);
    report.annotate("l1_evictions", c.l1_evictions as f64);
    report.annotate("l2_evictions", c.l2_evictions as f64);
    report.annotate("l2_sector_fills", c.l2_sector_fills as f64);
}

fn main() {
    let cfg = Config::from_env(0.1, 12, 10);
    let device = DeviceConfig::tesla_c2075();
    println!(
        "== Cache model: L1 locality by decomposition, L2 locality by layout \
         ({}; device = {}) ==\n",
        cfg.describe(),
        device.name
    );

    let mut table = Table::new(vec![
        "Graph",
        "Edge L1",
        "Node L1",
        "Node L2",
        "Base L2(64K)",
        "Sorted L2(64K)",
        "dL2",
    ]);
    let mut fig = HarnessReport::new("cache_model");
    let mut node_l1_above_edge_everywhere = true;
    let mut sorted_wins = 0usize;
    let mut best_gain = f64::NEG_INFINITY;
    let mut best_graph = "";
    for entry in &TABLE_I {
        let setup = build_setup(entry, &cfg);
        eprintln!(
            "[cache] {}: n={} m={} ... ",
            entry.short,
            setup.n(),
            setup.m()
        );

        // Experiment 1: edge- vs node-parallel L1 hit rate under the
        // prefer-L1 split.
        let mut l1 = [0.0f64; 2];
        let mut node_l2 = 0.0f64;
        for (i, par) in [Parallelism::Edge, Parallelism::Node]
            .into_iter()
            .enumerate()
        {
            let (run, profile, _) = run_gpu_memsim(&setup, device, par, Some(prefer_l1()));
            let c = profile.total().cache;
            l1[i] = c.l1_hit_rate();
            if par == Parallelism::Node {
                node_l2 = c.l2_hit_rate();
            }
            fig.push_row(
                entry.short,
                &format!("GPU {par}"),
                run.total_model_seconds,
                run.total_wall_seconds,
            );
            annotate_cache(&mut fig, &c);
            let (name, misses) = hottest(&profile);
            fig.annotate(&format!("hot_buffer_{name}_l1_misses"), misses as f64);
        }
        node_l1_above_edge_everywhere &= l1[1] > l1[0];

        // Experiment 2: natural vs degree-sorted layout, node-parallel,
        // small L2. Memsim must not move a bit: compare against a
        // memsim-off run of the identical stream first.
        let new_id = degree_sort_permutation(&setup.start);
        let sorted_setup = relabel(&setup, &new_id);
        let mut l2 = [0.0f64; 2];
        let mut bc_by_layout: Vec<Vec<f64>> = Vec::with_capacity(2);
        for (i, (layout, s)) in [("baseline", &setup), ("degree-sorted", &sorted_setup)]
            .into_iter()
            .enumerate()
        {
            let (run, profile, bc) = run_gpu_memsim(s, device, Parallelism::Node, Some(small_l2()));
            let (off, bc_off) =
                run_gpu_backend(s, device, Parallelism::Node, Backend::Simulator, 0);
            assert_eq!(
                bc.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                bc_off.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "{}/{layout}: memsim must not change a BC bit",
                entry.short
            );
            assert_eq!(
                run.total_model_seconds.to_bits(),
                off.total_model_seconds.to_bits(),
                "{}/{layout}: memsim must not change the modeled clock",
                entry.short
            );
            let c = profile.total().cache;
            l2[i] = c.l2_hit_rate();
            bc_by_layout.push(bc);
            fig.push_row(
                &format!("{}/layout", entry.short),
                layout,
                run.total_model_seconds,
                run.total_wall_seconds,
            );
            annotate_cache(&mut fig, &c);
        }
        // The two layouts compute the same analytic: scores agree on
        // every vertex modulo the relabeling (tolerance, not bits — the
        // relabeled run accumulates floats in a different order).
        for (v, &base) in bc_by_layout[0].iter().enumerate() {
            let sorted = bc_by_layout[1][new_id[v] as usize];
            let tol = 1e-6 * base.abs().max(1.0);
            assert!(
                (base - sorted).abs() <= tol,
                "{}: BC[{v}] = {base} vs degree-sorted {sorted}",
                entry.short
            );
        }
        let gain = l2[1] - l2[0];
        sorted_wins += usize::from(gain > 0.0);
        if gain > best_gain {
            best_gain = gain;
            best_graph = entry.short;
        }
        fig.annotate("l2_hit_rate_gain", gain);

        table.row(vec![
            entry.short.to_string(),
            format!("{:.4}", l1[0]),
            format!("{:.4}", l1[1]),
            format!("{:.4}", node_l2),
            format!("{:.4}", l2[0]),
            format!("{:.4}", l2[1]),
            format!("{:+.4}", l2[1] - l2[0]),
        ]);
    }
    println!("{}", table.render());
    if let Some(path) = fig.write_default() {
        println!("machine-readable rows appended to {}", path.display());
    }

    println!(
        "\npaper-shape check: node L1 hit rate above edge on all graphs = \
         {node_l1_above_edge_everywhere} => {}",
        if node_l1_above_edge_everywhere {
            "PASS"
        } else {
            "FAIL"
        }
    );
    println!(
        "layout check: degree-sorted L2 hit rate above baseline on {sorted_wins}/{} graphs, \
         best gain {best_gain:+.4} ({best_graph}) => {}",
        TABLE_I.len(),
        if best_gain >= 0.01 { "PASS" } else { "FAIL" }
    );
    assert!(
        node_l1_above_edge_everywhere,
        "node-parallel L1 hit rate must be strictly above edge-parallel on every graph"
    );
    assert!(
        best_gain >= 0.01,
        "degree-sorted CSR must measurably improve the small-L2 hit rate on at least \
         one suite graph; best gain {best_gain:+.4} on {best_graph}"
    );
}
