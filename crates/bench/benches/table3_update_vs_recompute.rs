//! Table III: node-parallel dynamic updates vs full GPU recomputation.
//!
//! For each graph: one static (from-scratch) GPU BC run is the
//! recomputation cost; the dynamic run's slowest / average / fastest
//! per-insertion times are compared against it. Paper headline: even the
//! *slowest* update beats recomputation (2.15×–43.3×), the average is
//! ~45× across the suite, and the fastest updates (all-Case-1
//! insertions) win by orders of magnitude.

use dynbc_bc::cases::InsertionCase;
use dynbc_bc::gpu::{static_bc_gpu, Parallelism};
use dynbc_bench::table::{fmt_seconds, fmt_speedup, Table};
use dynbc_bench::{build_setup, paper, run_gpu, Config};
use dynbc_gpusim::DeviceConfig;
use dynbc_graph::suite::TABLE_I;
use dynbc_graph::Csr;

fn main() {
    let cfg = Config::from_env(0.35, 24, 20);
    let device = DeviceConfig::tesla_c2075();
    println!(
        "== Table III: node-parallel updates vs GPU recomputation ({}; device = {}) ==\n",
        cfg.describe(),
        device.name
    );

    let mut table = Table::new(vec![
        "Graph",
        "Recompute",
        "Slowest",
        "(speedup)",
        "Average",
        "(speedup)",
        "Fastest",
        "(speedup)",
        "paper avg",
    ]);
    let mut worst_case_always_wins = true;
    let mut avg_speedups = Vec::new();
    for entry in &TABLE_I {
        let setup = build_setup(entry, &cfg);
        eprintln!("[table3] {} ...", entry.short);
        // Recomputation baseline: static node-parallel BC over the final
        // graph (the strongest static baseline; see DESIGN.md).
        let mut final_graph = setup.start.clone();
        for &(u, v) in &setup.insertions {
            final_graph.insert_edge(u, v);
        }
        let csr = Csr::from_edge_list(&final_graph);
        let recompute = static_bc_gpu(
            device,
            &csr,
            &setup.sources,
            Parallelism::Node,
            device.num_sms,
        );
        let dynamic = run_gpu(&setup, device, Parallelism::Node);
        let (slow, avg, fast) = (dynamic.slowest(), dynamic.average(), dynamic.fastest());
        worst_case_always_wins &= slow < recompute.seconds;
        avg_speedups.push(recompute.seconds / avg);
        // Note whether any insertion was the all-Case-1 ideal.
        let any_all_case1 = dynamic
            .per_insertion
            .iter()
            .any(|r| r.per_source.iter().all(|o| o.case == InsertionCase::Same));
        let p = paper::table3_row(entry.short).unwrap();
        table.row(vec![
            format!(
                "{}{}",
                entry.short,
                if any_all_case1 {
                    " (has all-Case1)"
                } else {
                    ""
                }
            ),
            fmt_seconds(recompute.seconds),
            fmt_seconds(slow),
            fmt_speedup(recompute.seconds / slow),
            fmt_seconds(avg),
            fmt_speedup(recompute.seconds / avg),
            fmt_seconds(fast),
            fmt_speedup(recompute.seconds / fast),
            fmt_speedup(p.recompute_s / p.average_s),
        ]);
    }
    println!("{}", table.render());

    let geo_mean_avg =
        (avg_speedups.iter().map(|s| s.ln()).sum::<f64>() / avg_speedups.len() as f64).exp();
    println!(
        "average-update speedup over recomputation: geometric mean {:.1}x (paper arithmetic mean ≈ {:.0}x)",
        geo_mean_avg,
        paper::AVG_UPDATE_SPEEDUP_VS_RECOMPUTE
    );

    let ok = worst_case_always_wins && geo_mean_avg > 5.0;
    println!(
        "\npaper-shape check: slowest update < recomputation on every graph = \
         {worst_case_always_wins}; mean average-update speedup {:.1}x > 5x => {}",
        geo_mean_avg,
        if ok { "PASS" } else { "FAIL" }
    );
    assert!(ok, "Table III shape did not reproduce");
}
