//! Figure 4: fraction of the graph touched by each Case 2 scenario.
//!
//! The paper's scatterplot shows, across 62 844 Case 2 scenarios, a
//! maximum touched fraction of ≈ 35 % with the overwhelming mass near
//! zero — the observation that motivates explicit work tracking. We print
//! the per-graph distribution (quantiles instead of 60 000 scatter
//! points) and check the same two properties: a bounded maximum and a
//! near-zero median.

use dynbc_bc::cases::InsertionCase;
use dynbc_bench::table::Table;
use dynbc_bench::{build_setup, paper, run_cpu, Config};
use dynbc_graph::suite::TABLE_I;

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[pos.min(sorted.len() - 1)]
}

fn main() {
    let cfg = Config::from_env(0.5, 32, 40);
    println!(
        "== Figure 4: touched fraction per Case 2 scenario ({}) ==\n",
        cfg.describe()
    );

    let mut table = Table::new(vec![
        "Graph",
        "Case2 scenarios",
        "p50 %",
        "p90 %",
        "p99 %",
        "max %",
    ]);
    let mut all: Vec<f64> = Vec::new();
    for entry in &TABLE_I {
        let setup = build_setup(entry, &cfg);
        let n = setup.n() as f64;
        let run = run_cpu(&setup);
        let mut fracs: Vec<f64> = run
            .per_insertion
            .iter()
            .flat_map(|r| &r.per_source)
            .filter(|o| o.case == InsertionCase::Adjacent)
            .map(|o| o.touched as f64 / n)
            .collect();
        fracs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        all.extend_from_slice(&fracs);
        table.row(vec![
            entry.short.to_string(),
            fracs.len().to_string(),
            format!("{:.3}", 100.0 * quantile(&fracs, 0.5)),
            format!("{:.3}", 100.0 * quantile(&fracs, 0.9)),
            format!("{:.3}", 100.0 * quantile(&fracs, 0.99)),
            format!("{:.3}", 100.0 * fracs.last().copied().unwrap_or(0.0)),
        ]);
    }
    println!("{}", table.render());

    all.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let max = all.last().copied().unwrap_or(0.0);
    let median = quantile(&all, 0.5);
    println!(
        "overall: {} Case 2 scenarios, median touched {:.3}%, max {:.2}%",
        all.len(),
        100.0 * median,
        100.0 * max
    );
    println!(
        "paper (full scale): max ≈ {:.0}%, dense mass near zero",
        100.0 * paper::FIG4_MAX_TOUCHED_FRACTION
    );

    // Shape checks: the maximum is well below the whole graph, and the
    // typical scenario touches a small sliver of it.
    let ok = max < 0.60 && median < 0.10;
    println!(
        "\npaper-shape check: max touched {:.1}% < 60% and median {:.2}% < 10% => {}",
        100.0 * max,
        100.0 * median,
        if ok { "PASS" } else { "FAIL" }
    );
    assert!(ok, "Figure 4 shape did not reproduce");
}
