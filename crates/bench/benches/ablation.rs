//! Ablation studies on the design choices DESIGN.md calls out.
//!
//! **A. Frontier duplicate removal** — the paper avoids an atomic
//! test-and-set per discovered vertex by tolerating duplicates and running
//! a bitonic-sort/flag/scan pipeline per level. We run the node-parallel
//! dynamic engine both ways and compare simulated time and atomic counts.
//!
//! **B. Specialized Case 2 vs the general path** — Algorithm 2's
//! incremental add/retract bookkeeping exists because distances are
//! static in Case 2. Forcing Case 2 insertions through the general
//! (relocation-capable, pull-based) Case 3 machinery is still correct;
//! this measures what the specialization buys.

use dynbc_bc::brandes::brandes_state;
use dynbc_bc::gpu::engine::DedupStrategy;
use dynbc_bc::gpu::{GpuDynamicBc, Parallelism};
use dynbc_bench::table::{fmt_seconds, Table};
use dynbc_bench::{build_setup, Config, Setup};
use dynbc_gpusim::DeviceConfig;
use dynbc_graph::suite::entry_by_short;
use dynbc_graph::Csr;

fn run_variant(
    setup: &Setup,
    device: DeviceConfig,
    dedup: DedupStrategy,
    general: bool,
) -> (f64, u64, u64) {
    let mut engine = GpuDynamicBc::new(&setup.start, &setup.sources, device, Parallelism::Node)
        .with_dedup_strategy(dedup)
        .with_force_general(general);
    for &(u, v) in &setup.insertions {
        engine.insert_edge(u, v);
    }
    // Correctness gate: every variant must match a fresh recomputation.
    let mut final_graph = setup.start.clone();
    for &(u, v) in &setup.insertions {
        final_graph.insert_edge(u, v);
    }
    let fresh = brandes_state(&Csr::from_edge_list(&final_graph), &setup.sources);
    let got = engine.state_snapshot();
    for v in 0..fresh.n {
        assert!(
            (got.bc[v] - fresh.bc[v]).abs() <= 1e-6 * fresh.bc[v].abs().max(1.0),
            "variant dedup={dedup:?} general={general} wrong at BC[{v}]"
        );
    }
    let stats = engine.total_stats();
    (
        engine.elapsed_seconds(),
        stats.atomics,
        stats.atomic_conflicts,
    )
}

fn main() {
    let cfg = Config::from_env(0.35, 24, 20);
    let device = DeviceConfig::tesla_c2075();
    println!(
        "== Ablations ({}; device = {}) ==\n",
        cfg.describe(),
        device.name
    );

    let graphs = ["caida", "pref", "small", "del"];

    println!("-- A. duplicate removal: sort/scan (paper) vs atomicCAS gate --");
    let mut t = Table::new(vec![
        "Graph",
        "SortScan",
        "AtomicCas",
        "CAS/Sort",
        "Sort atomics",
        "CAS atomics",
    ]);
    for short in graphs {
        let setup = build_setup(entry_by_short(short).unwrap(), &cfg);
        let (sort_s, sort_atomics, _) = run_variant(&setup, device, DedupStrategy::SortScan, false);
        let (cas_s, cas_atomics, _) = run_variant(&setup, device, DedupStrategy::AtomicCas, false);
        t.row(vec![
            short.to_string(),
            fmt_seconds(sort_s),
            fmt_seconds(cas_s),
            format!("{:.2}", cas_s / sort_s),
            sort_atomics.to_string(),
            cas_atomics.to_string(),
        ]);
    }
    println!("{}", t.render());

    println!("-- B. Case 2 specialized (Alg 2) vs forced general path --");
    let mut t = Table::new(vec![
        "Graph",
        "Specialized",
        "General",
        "General/Specialized",
    ]);
    let mut ratios = Vec::new();
    for short in graphs {
        let setup = build_setup(entry_by_short(short).unwrap(), &cfg);
        let (spec_s, _, _) = run_variant(&setup, device, DedupStrategy::SortScan, false);
        let (gen_s, _, _) = run_variant(&setup, device, DedupStrategy::SortScan, true);
        ratios.push(gen_s / spec_s);
        t.row(vec![
            short.to_string(),
            fmt_seconds(spec_s),
            fmt_seconds(gen_s),
            format!("{:.2}", gen_s / spec_s),
        ]);
    }
    println!("{}", t.render());

    // Both variants are *correct* (asserted above); the ablation's finding
    // is about cost only. Sanity: the general path is never dramatically
    // cheaper — if it were, the paper's specialization would be pointless.
    let min_ratio = ratios.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "ablation check: general path is never < 0.5x of the specialized path \
         (min ratio {min_ratio:.2}) => {}",
        if min_ratio > 0.5 { "PASS" } else { "FAIL" }
    );
    assert!(min_ratio > 0.5, "ablation sanity failed");

    println!("\n-- C. multi-GPU strong scaling (paper future work) --");
    // Strong scaling needs enough coarse-grained work to split: run this
    // section with at least 96 sources regardless of the global config
    // (the per-insertion makespan is otherwise pinned to the heaviest
    // single source).
    let scaling_cfg = dynbc_bench::Config {
        sources: cfg.sources.max(96),
        ..cfg
    };
    let mut t = Table::new(vec![
        "Graph",
        "1 GPU",
        "2 GPUs",
        "4 GPUs",
        "8 GPUs",
        "4-GPU efficiency",
    ]);
    let mut effs = Vec::new();
    for short in ["caida", "small"] {
        let setup = build_setup(entry_by_short(short).unwrap(), &scaling_cfg);
        let time_with = |d: usize| {
            let mut eng = dynbc_bc::gpu::MultiGpuDynamicBc::new(
                &setup.start,
                &setup.sources,
                device,
                Parallelism::Node,
                d,
            );
            let mut total = 0.0;
            for &(u, v) in &setup.insertions {
                total += eng.insert_edge(u, v).model_seconds;
            }
            total
        };
        let (t1, t2, t4, t8) = (time_with(1), time_with(2), time_with(4), time_with(8));
        let eff4 = t1 / t4 / 4.0;
        effs.push(eff4);
        t.row(vec![
            short.to_string(),
            fmt_seconds(t1),
            fmt_seconds(t2),
            fmt_seconds(t4),
            fmt_seconds(t8),
            format!("{:.0}%", 100.0 * eff4),
        ]);
    }
    println!("{}", t.render());
    let min_eff = effs.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "scaling check: 4-GPU parallel efficiency > 30% on every graph \
         (min {:.0}%) => {}",
        100.0 * min_eff,
        if min_eff > 0.30 { "PASS" } else { "FAIL" }
    );
    assert!(min_eff > 0.30, "strong scaling collapsed");
}
