//! Figure 1 of the paper via telemetry: per-insertion touched-vertex
//! fraction and update-latency distributions.
//!
//! The paper's core premise is that a streaming edge insertion perturbs
//! only a small neighbourhood of the shortest-path DAG, so recomputing
//! from scratch wastes almost all of its work. This harness measures that
//! directly from the [`dynbc_telemetry`] histograms: it runs the
//! Section-IV insertion stream through the telemetry-enabled CPU engine
//! and the node-parallel GPU engine on every suite graph and reports:
//!
//! * `fig1_touched_fraction` — one row per (graph, engine) with the
//!   median/p90/p99/max touched-vertex fraction over all work-requiring
//!   (Case 2) source scenarios of the stream (the `fig4_touched`
//!   population, here read back from the telemetry histogram);
//! * `update_latency` — one row per (graph, engine) with p50/p90/p99
//!   model-clock and host-wall update latency.
//!
//! Shape check: the **median** touched fraction stays below 10% of the
//! vertex set on every suite graph, for both engines. Quantiles come from
//! the log-linear histogram, so they are bit-identical for any
//! `DYNBC_HOST_THREADS` (the telemetry determinism contract).

use dynbc_bc::dynamic::CpuDynamicBc;
use dynbc_bc::gpu::{GpuDynamicBc, Parallelism};
use dynbc_bench::table::Table;
use dynbc_bench::{build_setup, Config, HarnessReport, Setup};
use dynbc_gpusim::DeviceConfig;
use dynbc_graph::suite::TABLE_I;
use dynbc_telemetry::{Telemetry, TOUCHED_FRACTION, UPDATE_LATENCY_MODEL, UPDATE_LATENCY_WALL};

/// Median touched fraction must stay below this share of |V| (Figure 1's
/// "updates touch a tiny fraction of the graph" claim).
const MEDIAN_TOUCHED_BUDGET: f64 = 0.10;

/// One engine's pass over the insertion stream with telemetry enabled.
struct TelemetryRun {
    label: String,
    telemetry: Telemetry,
    model_seconds: f64,
    wall_seconds: f64,
}

/// Runs the insertion stream through the telemetry-enabled CPU engine.
fn run_cpu_telemetry(setup: &Setup) -> TelemetryRun {
    let mut engine = CpuDynamicBc::new(&setup.start, &setup.sources).with_telemetry(true);
    let (mut model, mut wall) = (0.0, 0.0);
    for &(u, v) in &setup.insertions {
        let r = engine.insert_edge(u, v);
        model += r.model_seconds;
        wall += r.wall_seconds;
    }
    TelemetryRun {
        label: "CPU (i7-2600K model)".to_string(),
        telemetry: engine.take_telemetry_report().expect("telemetry enabled"),
        model_seconds: model,
        wall_seconds: wall,
    }
}

/// Runs the insertion stream through the telemetry-enabled node-parallel
/// GPU engine (the paper's winning decomposition).
fn run_gpu_telemetry(setup: &Setup, device: DeviceConfig) -> TelemetryRun {
    let mut engine = GpuDynamicBc::new(&setup.start, &setup.sources, device, Parallelism::Node)
        .with_telemetry(true);
    let (mut model, mut wall) = (0.0, 0.0);
    for &(u, v) in &setup.insertions {
        let r = engine.insert_edge(u, v);
        model += r.model_seconds;
        wall += r.wall_seconds;
    }
    TelemetryRun {
        label: format!("GPU node ({})", device.name),
        telemetry: engine.take_telemetry_report().expect("telemetry enabled"),
        model_seconds: model,
        wall_seconds: wall,
    }
}

fn main() {
    // Same defaults as `fig4_touched`: the two harnesses quantile the same
    // scenario population, one from raw outcomes, one from the telemetry
    // histogram.
    let cfg = Config::from_env(0.5, 32, 40);
    let device = DeviceConfig::tesla_c2075();
    println!(
        "== Figure 1: per-insertion touched-vertex fraction via telemetry \
         ({}; device = {}) ==\n",
        cfg.describe(),
        device.name
    );

    let mut table = Table::new(vec![
        "Graph",
        "Engine",
        "Touched p50",
        "Touched p90",
        "Touched p99",
        "Touched max",
        "Latency p50 (model s)",
    ]);
    let mut fig = HarnessReport::new("fig1_touched_fraction");
    let mut lat = HarnessReport::new("update_latency");
    let mut median_below_budget_everywhere = true;
    for entry in &TABLE_I {
        let setup = build_setup(entry, &cfg);
        eprintln!(
            "[fig1] {}: n={} m={} ... ",
            entry.short,
            setup.n(),
            setup.m()
        );
        for run in [run_cpu_telemetry(&setup), run_gpu_telemetry(&setup, device)] {
            let touched = run
                .telemetry
                .histogram(TOUCHED_FRACTION)
                .expect("touched-fraction histogram populated");
            let model = run
                .telemetry
                .histogram(UPDATE_LATENCY_MODEL)
                .expect("model-latency histogram populated");
            let wall = run
                .telemetry
                .histogram(UPDATE_LATENCY_WALL)
                .expect("wall-latency histogram populated");
            fig.push_row_with(
                entry.short,
                &run.label,
                run.model_seconds,
                run.wall_seconds,
                &[
                    ("touched_fraction_p50", touched.p50()),
                    ("touched_fraction_p90", touched.p90()),
                    ("touched_fraction_p99", touched.p99()),
                    ("touched_fraction_max", touched.max()),
                    ("case2_scenarios", touched.count() as f64),
                    ("updates", setup.insertions.len() as f64),
                ],
            );
            lat.push_row_with(
                entry.short,
                &run.label,
                run.model_seconds,
                run.wall_seconds,
                &[
                    ("latency_model_p50", model.p50()),
                    ("latency_model_p90", model.p90()),
                    ("latency_model_p99", model.p99()),
                    ("latency_wall_p50", wall.p50()),
                    ("latency_wall_p90", wall.p90()),
                    ("latency_wall_p99", wall.p99()),
                ],
            );
            median_below_budget_everywhere &= touched.p50() < MEDIAN_TOUCHED_BUDGET;
            table.row(vec![
                entry.short.to_string(),
                run.label.clone(),
                format!("{:.4}", touched.p50()),
                format!("{:.4}", touched.p90()),
                format!("{:.4}", touched.p99()),
                format!("{:.4}", touched.max()),
                format!("{:.3e}", model.p50()),
            ]);
        }
    }
    println!("{}", table.render());
    if let Some(path) = fig.write_default() {
        println!("machine-readable rows appended to {}", path.display());
    }
    lat.write_default();

    println!(
        "\npaper-shape check: median touched fraction < {MEDIAN_TOUCHED_BUDGET} \
         on all graphs = {median_below_budget_everywhere} => {}",
        if median_below_budget_everywhere {
            "PASS"
        } else {
            "FAIL"
        }
    );
    assert!(
        median_below_budget_everywhere,
        "median per-insertion touched fraction must stay below \
         {MEDIAN_TOUCHED_BUDGET} of the vertex set on every suite graph"
    );
}
