//! `slack_update` — prices the device-resident slack-CSR update path.
//!
//! Two claims ride on the slack store (DESIGN.md §4j):
//!
//! 1. **throughput** — replacing per-op CSR snapshots with O(degree)
//!    versioned deltas must not cost model-clock throughput. The
//!    harness replays `batch_throughput`'s fixed distance-fusable
//!    64-insertion stream on the node-parallel engine and asserts the
//!    batch=64 updates/sec stays at or above the rate the per-op
//!    snapshot engine recorded for the same stream.
//! 2. **delta sparsity** — the structure update itself touches
//!    O(degree) slots per op, not O(E). Measured with the store's own
//!    `slots_touched` counter over the same stream, against the
//!    `ops × arc_count` slots a per-op snapshot clone moves.
//!
//! Scores stay bit-identical at every batch size, as everywhere else.

use dynbc_bc::brandes::{brandes_state, sample_sources};
use dynbc_bc::gpu::{GpuDynamicBc, Parallelism};
use dynbc_bench::{stream, HarnessReport};
use dynbc_gpusim::DeviceConfig;
use dynbc_graph::{gen, Csr, EdgeOp, SlackCsr};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Model-clock updates/sec the per-op-snapshot engine recorded for this
/// exact stream (`batch_throughput`, batch=64): the floor the slack
/// store must hold.
const SNAPSHOT_BASELINE_BATCH64_UPS: f64 = 72110.45754477216;

/// The `batch_throughput` workload, verbatim: a BA(300, 4) graph, 24
/// sources, and 64 insertions whose endpoints sit within one BFS level
/// for every source — so every batch fuses into a single stage.
fn workload() -> (dynbc_graph::EdgeList, Vec<u32>, Vec<EdgeOp>) {
    let mut rng = StdRng::seed_from_u64(11);
    let n = 300usize;
    let el = gen::ba(&mut rng, n, 4);
    let sources = sample_sources(&mut rng, n, 24);
    let state = brandes_state(&Csr::from_edge_list(&el), &sources);
    let ops = stream::fusable_insertions(&el, &state, 64);
    (el, sources, ops)
}

fn main() {
    let (el, sources, ops) = workload();
    let device = DeviceConfig::tesla_c2075();
    let mut report = HarnessReport::new("slack_update");

    // Claim 1: throughput through the engine, batch=1 vs batch=64.
    let mut baseline_bc: Option<Vec<u64>> = None;
    let mut ups_batch64 = f64::NAN;
    for batch in [1usize, 64] {
        let mut eng = GpuDynamicBc::new(&el, &sources, device, Parallelism::Node);
        let t0 = Instant::now();
        let mut model = 0.0f64;
        for chunk in ops.chunks(batch) {
            model += eng.apply_batch(chunk).model_seconds;
        }
        let wall = t0.elapsed().as_secs_f64();
        let bits: Vec<u64> = eng
            .state_snapshot()
            .bc
            .iter()
            .map(|x| x.to_bits())
            .collect();
        match &baseline_bc {
            None => baseline_bc = Some(bits),
            Some(b) => assert_eq!(b, &bits, "batch={batch}: scores must be bit-identical"),
        }
        let ups = ops.len() as f64 / model;
        if batch == 64 {
            ups_batch64 = ups;
        }
        report.push_row("ba300_k24", &format!("batch={batch}"), model, wall);
        report.annotate("batch", batch as f64);
        report.annotate("updates_per_sec", ups);
        println!("bench slack_update batch={batch:<2} {ups:.0} updates/sec");
    }
    assert!(
        ups_batch64 >= SNAPSHOT_BASELINE_BATCH64_UPS,
        "slack store must hold the per-op-snapshot engine's batch=64 rate: \
         {ups_batch64} vs {SNAPSHOT_BASELINE_BATCH64_UPS}"
    );

    // Claim 2: delta sparsity of the structure update itself. Replay
    // the stream on a bare slack store with the engines' defaults and
    // count the slots its journal actually moved; the snapshot path
    // staged the full arc array once per op.
    let csr = Csr::from_edge_list(&el);
    let mut slack = SlackCsr::from_csr(&csr, 25, 25);
    for chunk in ops.chunks(64) {
        for (j, op) in chunk.iter().enumerate() {
            match *op {
                EdgeOp::Insert(u, v) => slack.insert_edge_versioned(u, v, j as u32 + 1),
                EdgeOp::Remove(u, v) => slack.remove_edge_versioned(u, v, j as u32 + 1),
            }
        }
        slack.settle();
    }
    let delta_slots = slack.slots_touched();
    let snapshot_slots = (ops.len() * csr.adjacency().len()) as u64;
    let ratio = delta_slots as f64 / snapshot_slots as f64;
    println!(
        "bench slack_update deltas: {delta_slots} slots touched vs {snapshot_slots} \
         snapshot-staged ({:.2}% — {} relayouts, {} compactions)",
        ratio * 100.0,
        slack.relayouts(),
        slack.compactions()
    );
    assert!(
        delta_slots * 10 < snapshot_slots,
        "versioned deltas must move well under a tenth of the snapshot bytes: \
         {delta_slots} vs {snapshot_slots}"
    );
    report.annotate("delta_slots_touched", delta_slots as f64);
    report.annotate("snapshot_slots_staged", snapshot_slots as f64);
    report.annotate("delta_vs_snapshot", ratio);
    report.annotate("relayouts", slack.relayouts() as f64);
    report.annotate("compactions", slack.compactions() as f64);
    report.annotate("baseline_batch64_ups", SNAPSHOT_BASELINE_BATCH64_UPS);

    if let Some(path) = report.write_default() {
        println!("slack_update: wrote {}", path.display());
    }
}
