//! Futile-work figure (ours): the paper's explanation for Table II,
//! measured directly with the simulator's hardware-style counters.
//!
//! The edge-parallel decomposition assigns one thread per arc and rescans
//! the *entire* arc list every BFS level, so almost every scanned edge
//! fails the frontier test ("futile" work); the node-parallel
//! decomposition only walks the adjacency of frontier vertices. This
//! harness runs the Section-IV insertion stream through both profiled GPU
//! engines on every suite graph and reports:
//!
//! * `fig_futile_work` — one row per (graph, decomposition) with the
//!   futile-edge ratio, occupancy, coalesced fraction, and queue/dedup
//!   pipeline volume;
//! * `kernel_profile` — per-kernel counter totals (one row per
//!   graph × kernel), the machine-readable form of an nvprof table.
//!
//! Shape check: the node-parallel futile ratio is strictly below the
//! edge-parallel one on **every** graph.

use dynbc_bc::gpu::Parallelism;
use dynbc_bench::table::Table;
use dynbc_bench::{build_setup, run_gpu_profiled, Config, HarnessReport};
use dynbc_gpusim::{Counters, DeviceConfig, ProfileReport};
use dynbc_graph::suite::TABLE_I;

/// Simulated seconds spent in launches of `kernel`.
fn kernel_seconds(report: &ProfileReport, kernel: &str) -> f64 {
    report
        .launches
        .iter()
        .filter(|l| l.kernel == kernel)
        .map(|l| l.seconds)
        .sum()
}

fn main() {
    let cfg = Config::from_env(0.3, 16, 12);
    let device = DeviceConfig::tesla_c2075();
    println!(
        "== Futile work: edge- vs node-parallel scanned/passed edges ({}; device = {}) ==\n",
        cfg.describe(),
        device.name
    );

    let mut table = Table::new(vec![
        "Graph",
        "Edge scanned",
        "Edge futile",
        "Node scanned",
        "Node futile",
        "Node occup.",
        "Node coal.",
    ]);
    let mut fig = HarnessReport::new("fig_futile_work");
    let mut kernels = HarnessReport::new("kernel_profile");
    let mut node_below_edge_everywhere = true;
    for entry in &TABLE_I {
        let setup = build_setup(entry, &cfg);
        eprintln!(
            "[futile] {}: n={} m={} ... ",
            entry.short,
            setup.n(),
            setup.m()
        );
        let mut totals: Vec<Counters> = Vec::with_capacity(2);
        for par in [Parallelism::Edge, Parallelism::Node] {
            let (run, profile) = run_gpu_profiled(&setup, device, par);
            let c = profile.total();
            fig.push_row(
                entry.short,
                &format!("GPU {par}"),
                run.total_model_seconds,
                run.total_wall_seconds,
            );
            fig.annotate("futile_ratio", c.futile_edge_ratio());
            fig.annotate("edges_scanned", c.edges_scanned as f64);
            fig.annotate("edges_passed", c.edges_passed as f64);
            fig.annotate("occupancy", c.occupancy());
            fig.annotate("coalesced_fraction", c.coalesced_fraction());
            fig.annotate("divergent_warps", c.divergent_warps as f64);
            fig.annotate("atomic_conflicts", c.atomic_conflicts as f64);
            fig.annotate("queue_pushes", c.queue_pushes as f64);
            fig.annotate("dedup_ops", c.dedup_ops as f64);
            for (kernel, kc) in profile.kernel_totals() {
                kernels.push_row(
                    &format!("{}/{kernel}", entry.short),
                    &format!("GPU {par}"),
                    kernel_seconds(&profile, &kernel),
                    profile.kernel_wall_seconds(&kernel),
                );
                kernels.annotate("edges_scanned", kc.edges_scanned as f64);
                kernels.annotate("edges_passed", kc.edges_passed as f64);
                kernels.annotate("futile_ratio", kc.futile_edge_ratio());
                kernels.annotate("occupancy", kc.occupancy());
                kernels.annotate("coalesced_fraction", kc.coalesced_fraction());
                kernels.annotate("divergence_stalls", kc.divergence_stalls as f64);
                kernels.annotate("atomic_conflicts", kc.atomic_conflicts as f64);
                kernels.annotate("max_contention_depth", kc.max_contention_depth as f64);
            }
            totals.push(c);
        }
        let (edge, node) = (&totals[0], &totals[1]);
        node_below_edge_everywhere &= node.futile_edge_ratio() < edge.futile_edge_ratio();
        table.row(vec![
            entry.short.to_string(),
            format!("{}", edge.edges_scanned),
            format!("{:.4}", edge.futile_edge_ratio()),
            format!("{}", node.edges_scanned),
            format!("{:.4}", node.futile_edge_ratio()),
            format!("{:.3}", node.occupancy()),
            format!("{:.3}", node.coalesced_fraction()),
        ]);
    }
    println!("{}", table.render());
    if let Some(path) = fig.write_default() {
        println!("machine-readable rows appended to {}", path.display());
    }
    kernels.write_default();

    println!(
        "\npaper-shape check: node futile ratio below edge on all graphs = \
         {node_below_edge_everywhere} => {}",
        if node_below_edge_everywhere {
            "PASS"
        } else {
            "FAIL"
        }
    );
    assert!(
        node_below_edge_everywhere,
        "node-parallel futile-edge ratio must be strictly below edge-parallel on every graph"
    );
}
