//! Native direct-execution backend: bit-exactness and wall-clock speedup
//! over the SIMT simulator.
//!
//! The simulator interprets every kernel lane against the machine model,
//! which is what the paper's *measurements* need — but serving an update
//! stream only needs the results. The native backend runs the same
//! node-parallel stage work as plain Rust loops over the same buffers;
//! this harness asserts the contract on a caida-scale insertion stream:
//! BC scores **bit-identical** to the simulator, case tallies identical,
//! and wall-clock at least 20× faster.

use dynbc_bc::gpu::{Backend, Parallelism};
use dynbc_bench::table::{fmt_seconds, fmt_speedup, Table};
use dynbc_bench::{build_setup, emit_bench_json, run_gpu_backend, Config, DynRun};
use dynbc_gpusim::DeviceConfig;
use dynbc_graph::suite::TABLE_I;

fn main() {
    let cfg = Config::from_env(0.35, 24, 20);
    let device = DeviceConfig::tesla_c2075();
    println!(
        "== native backend: wall-clock serving speed vs the simulator \
         ({}; device = {}) ==\n",
        cfg.describe(),
        device.name
    );

    let mut table = Table::new(vec![
        "Graph",
        "Sim wall",
        "Native wall",
        "Native speedup",
        "BC bits",
    ]);
    let mut measured: Vec<(&str, DynRun)> = Vec::new();
    let mut caida_speedup = 0.0f64;
    let mut bits_identical_everywhere = true;
    // caida is the headline graph (the paper's Table II opener); the two
    // structural extremes — the mesh-like delaunay and the small-world
    // graph — keep the bit-exactness claim honest across BFS shapes.
    for entry in TABLE_I
        .iter()
        .filter(|e| matches!(e.short, "caida" | "del" | "small"))
    {
        let setup = build_setup(entry, &cfg);
        eprintln!(
            "[native_backend] {}: n={} m={} ...",
            entry.short,
            setup.n(),
            setup.m()
        );
        let (sim, sim_bc) =
            run_gpu_backend(&setup, device, Parallelism::Node, Backend::Simulator, 0);
        let (native, native_bc) =
            run_gpu_backend(&setup, device, Parallelism::Node, Backend::Native, 0);

        let bits_ok = sim_bc
            .iter()
            .zip(&native_bc)
            .all(|(a, b)| a.to_bits() == b.to_bits());
        bits_identical_everywhere &= bits_ok;
        for (rs, rn) in sim.per_insertion.iter().zip(&native.per_insertion) {
            assert_eq!(rs.cases, rn.cases, "{}: case tallies diverged", entry.short);
            assert_eq!(
                rs.per_source, rn.per_source,
                "{}: per-source outcomes diverged",
                entry.short
            );
        }

        let speedup = sim.total_wall_seconds / native.total_wall_seconds;
        if entry.short == "caida" {
            caida_speedup = speedup;
        }
        table.row(vec![
            entry.short.to_string(),
            fmt_seconds(sim.total_wall_seconds),
            fmt_seconds(native.total_wall_seconds),
            fmt_speedup(speedup),
            if bits_ok { "identical" } else { "DIVERGED" }.to_string(),
        ]);
        measured.push((entry.short, sim));
        measured.push((entry.short, native));
    }
    println!("{}", table.render());
    let rows: Vec<(&str, &DynRun)> = measured.iter().map(|(g, r)| (*g, r)).collect();
    if let Some(path) = emit_bench_json("native_backend", &rows) {
        println!("machine-readable rows appended to {}", path.display());
    }

    let ok = bits_identical_everywhere && caida_speedup >= 20.0;
    println!(
        "\nbackend check: BC bit-identical on all graphs = {bits_identical_everywhere}; \
         caida native speedup {caida_speedup:.0}x (floor 20x) => {}",
        if ok { "PASS" } else { "FAIL" }
    );
    assert!(ok, "native backend contract did not hold");
}
