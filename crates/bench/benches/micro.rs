//! Criterion microbenches of the substrate layers: device-style data
//! structures, graph traversal, Brandes passes, a dynamic update, and the
//! host-parallel launch path of the simulator itself.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dynbc_bc::brandes::{brandes_state, sample_sources, source_pass};
use dynbc_bc::dynamic::CpuDynamicBc;
use dynbc_bc::gpu::{GpuDynamicBc, Parallelism};
use dynbc_bench::{stream, HarnessReport};
use dynbc_ds::{bitonic_sort, remove_duplicates, DedupScratch, MultiLevelQueue};
use dynbc_gpusim::{DeviceConfig, Gpu, GpuBuffer};
use dynbc_graph::algo::bfs;
use dynbc_graph::{gen, Csr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

fn rand_vec(n: usize, modulo: u32, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..modulo)).collect()
}

fn bench_sorting(c: &mut Criterion) {
    let data = rand_vec(1024, u32::MAX, 1);
    let mut g = c.benchmark_group("sort_1024");
    g.bench_function("bitonic_network", |b| {
        b.iter_batched(
            || data.clone(),
            |mut v| {
                bitonic_sort(&mut v);
                black_box(v)
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("std_unstable", |b| {
        b.iter_batched(
            || data.clone(),
            |mut v| {
                v.sort_unstable();
                black_box(v)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_dedup(c: &mut Criterion) {
    // Frontier-like input: many duplicates from a small id universe.
    let data = rand_vec(512, 64, 2);
    c.bench_function("dedup_frontier_512", |b| {
        let mut scratch = DedupScratch::with_capacity(512);
        b.iter_batched(
            || data.clone(),
            |mut q| black_box(remove_duplicates(&mut q, 512, &mut scratch)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_mlq(c: &mut Criterion) {
    c.bench_function("mlq_enqueue_drain_4096", |b| {
        let mut mlq = MultiLevelQueue::new(64);
        let items = rand_vec(4096, 64, 3);
        b.iter(|| {
            for (i, &v) in items.iter().enumerate() {
                mlq.enqueue((v % 64) as usize, i as u32);
            }
            let mut total = 0usize;
            mlq.drain_top_down(63, |_, _| total += 1);
            mlq.clear();
            black_box(total)
        })
    });
}

fn bench_graph(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let el = gen::ws(&mut rng, 10_000, 5, 0.1);
    let csr = Csr::from_edge_list(&el);
    c.bench_function("bfs_smallworld_10k", |b| b.iter(|| black_box(bfs(&csr, 0))));
    c.bench_function("brandes_source_pass_10k", |b| {
        b.iter(|| black_box(source_pass(&csr, 17)))
    });
}

fn bench_dynamic_update(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let el = gen::ba(&mut rng, 4_000, 5);
    let sources = sample_sources(&mut rng, 4_000, 16);
    // Pick a fresh edge to insert on every iteration via cloning the
    // prepared engine (clone cost is excluded by iter_batched).
    let engine = CpuDynamicBc::new(&el, &sources);
    let (u, v) = {
        loop {
            let a = rng.gen_range(0..4000u32);
            let b = rng.gen_range(0..4000u32);
            if a != b && !engine.graph().has_edge(a, b) {
                break (a, b);
            }
        }
    };
    c.bench_function("cpu_dynamic_insert_ba4k_k16", |b| {
        b.iter_batched(
            || engine.clone(),
            |mut e| black_box(e.insert_edge(u, v)),
            BatchSize::LargeInput,
        )
    });
}

/// One fixed launch for the scaling sweep: 56 blocks = four full waves on
/// the C2075's 14 SMs, each block hashing its own 512-element row and then
/// folding it into a small contended histogram (add-only, so the result is
/// thread-count invariant). Returns everything the simulator produced so
/// the sweep can assert bit-identity while it measures wall time.
fn scaling_launch(threads: usize) -> (f64, Vec<u32>, Vec<u32>) {
    scaling_launch_mode(threads, false)
}

/// [`scaling_launch`] with the racecheck analysis toggled explicitly —
/// the checked/unchecked pair the `racecheck_overhead` harness compares.
fn scaling_launch_mode(threads: usize, racecheck: bool) -> (f64, Vec<u32>, Vec<u32>) {
    scaling_launch_blocks(threads, racecheck, 56)
}

/// [`scaling_launch_mode`] at an explicit block count. 56 blocks is the
/// four-wave sweep launch; 14 blocks (one wave on the C2075) is the
/// small same-host calibration launch `bench_racecheck_overhead` uses
/// to price checked execution on the machine actually running.
fn scaling_launch_blocks(
    threads: usize,
    racecheck: bool,
    blocks: usize,
) -> (f64, Vec<u32>, Vec<u32>) {
    scaling_launch_on(
        Gpu::new(DeviceConfig::tesla_c2075())
            .with_host_threads(threads)
            .with_racecheck(racecheck),
        blocks,
    )
    .0
}

/// [`scaling_launch`] with the telemetry span log toggled explicitly —
/// the disabled/enabled pair the `telemetry_overhead` harness compares.
/// Sanity-checks that the span log captured exactly the one launch when
/// enabled and nothing when disabled.
fn scaling_launch_telemetry(span_log: bool) -> (f64, Vec<u32>, Vec<u32>) {
    let (r, g) = scaling_launch_on(
        Gpu::new(DeviceConfig::tesla_c2075())
            .with_host_threads(1)
            .with_span_log(span_log),
        56,
    );
    assert_eq!(g.launch_spans().len(), usize::from(span_log));
    r
}

/// Runs the fixed hash-and-histogram launch over `blocks` blocks on a
/// pre-configured simulator, returning the produced results plus the
/// simulator itself (so callers can inspect its telemetry span log or
/// profile report).
fn scaling_launch_on(mut g: Gpu, blocks: usize) -> ((f64, Vec<u32>, Vec<u32>), Gpu) {
    const ROW: usize = 512;
    let rows = GpuBuffer::<u32>::new(blocks * ROW, 1);
    let hist = GpuBuffer::<u32>::new(64, 0);
    let r = g.launch(blocks, |block, b| {
        block.parallel_for(ROW, |lane, i| {
            let idx = b * ROW + i;
            let mut v = lane.read(&rows, idx) ^ (b * ROW + i) as u32;
            for _ in 0..32 {
                v = v.wrapping_mul(1664525).wrapping_add(1013904223);
            }
            lane.compute(8);
            lane.write(&rows, idx, v);
        });
        block.barrier();
        block.parallel_for(ROW, |lane, i| {
            let v = lane.read(&rows, b * ROW + i);
            lane.atomic_add_u32(&hist, (v as usize) % 64, 1);
        });
    });
    ((r.seconds, rows.to_vec(), hist.to_vec()), g)
}

fn bench_launch_scaling(c: &mut Criterion) {
    let baseline = scaling_launch(1);
    let mut report = HarnessReport::new("launch_scaling");
    let mut wall_1thread = f64::NAN;
    for threads in [1usize, 2, 4, 8] {
        // Every thread count must reproduce the sequential run bit-for-bit
        // (simulated seconds and all buffer contents).
        let got = scaling_launch(threads);
        assert_eq!(
            got.0.to_bits(),
            baseline.0.to_bits(),
            "{threads} threads: seconds"
        );
        assert_eq!(got.1, baseline.1, "{threads} threads: rows");
        assert_eq!(got.2, baseline.2, "{threads} threads: histogram");

        // Manual timing loop feeding BENCH_dynbc.json (Criterion's numbers
        // only go to stdout).
        let iters = 12;
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(scaling_launch(threads));
        }
        let wall = t0.elapsed().as_secs_f64() / iters as f64;
        if threads == 1 {
            wall_1thread = wall;
        }
        report.push_row("blocks56", &format!("{threads} host threads"), got.0, wall);
        report.annotate("host_threads", threads as f64);
        report.annotate("speedup_vs_1_thread", wall_1thread / wall);

        c.bench_function(&format!("launch_scaling_56blocks_t{threads}"), |b| {
            b.iter(|| black_box(scaling_launch(threads)))
        });
    }
    report.write_default();
}

/// Throughput of the batch update API on the GPU node-parallel engine:
/// updates/sec (simulated) over one fixed 64-insertion stream applied in
/// batches of 1, 8, and 64. The stream is distance-preserving — every
/// endpoint pair sits within one BFS level for every source, so all ops
/// are Case 1/2 and every batch fuses into a single stage. That is the
/// best case the batch API targets: per-stage instead of per-op kernel
/// launches, and light work items packing into SMs idled by heavy ones.
/// (Case-3-heavy streams cut stages and degrade gracefully toward the
/// batch=1 rate.) Scores stay bit-identical at every batch size.
fn bench_batch_throughput(_c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let n = 300usize;
    let el = gen::ba(&mut rng, n, 4);
    let sources = sample_sources(&mut rng, n, 24);
    let state = brandes_state(&Csr::from_edge_list(&el), &sources);
    let ops = stream::fusable_insertions(&el, &state, 64);

    let device = DeviceConfig::tesla_c2075();
    let mut report = HarnessReport::new("batch_throughput");
    let mut baseline_bc: Option<Vec<u64>> = None;
    let mut ups_batch1 = f64::NAN;
    let mut ups_batch64 = f64::NAN;
    for batch in [1usize, 8, 64] {
        let mut eng = GpuDynamicBc::new(&el, &sources, device, Parallelism::Node);
        let t0 = Instant::now();
        let mut model = 0.0f64;
        for chunk in ops.chunks(batch) {
            model += eng.apply_batch(chunk).model_seconds;
        }
        let wall = t0.elapsed().as_secs_f64();
        let bits: Vec<u64> = eng
            .state_snapshot()
            .bc
            .iter()
            .map(|x| x.to_bits())
            .collect();
        match &baseline_bc {
            None => baseline_bc = Some(bits),
            Some(b) => assert_eq!(b, &bits, "batch={batch}: scores must be bit-identical"),
        }
        let ups = ops.len() as f64 / model;
        if batch == 1 {
            ups_batch1 = ups;
        }
        if batch == 64 {
            ups_batch64 = ups;
        }
        report.push_row("ba300_k24", &format!("batch={batch}"), model, wall);
        report.annotate("batch", batch as f64);
        report.annotate("updates_per_sec", ups);
        report.annotate("speedup_vs_batch1", ups / ups_batch1);
        println!(
            "bench batch_throughput batch={batch:<2} {:.0} updates/sec ({:.1}x vs batch=1)",
            ups,
            ups / ups_batch1
        );
    }
    assert!(
        ups_batch64 >= 2.0 * ups_batch1,
        "batch=64 must be at least 2x batch=1 updates/sec: {ups_batch64} vs {ups_batch1}"
    );
    report.write_default();
}

/// Minimum-over-`iters` wall seconds of `run` (one untimed warm-up).
fn min_wall(iters: usize, mut run: impl FnMut()) -> f64 {
    run(); // warm-up, untimed
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        run();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Wall-clock cost of checked (racecheck) execution on the same fixed
/// launch `bench_launch_scaling` sweeps. Checked mode must not change any
/// result bit — only how long the host takes to produce it — so the two
/// runs are first compared bit-for-bit and then timed.
fn bench_racecheck_overhead(c: &mut Criterion) {
    let unchecked = scaling_launch_mode(1, false);
    let checked = scaling_launch_mode(1, true);
    assert_eq!(
        checked.0.to_bits(),
        unchecked.0.to_bits(),
        "checked seconds must match unchecked"
    );
    assert_eq!(checked.1, unchecked.1, "checked rows must match unchecked");
    assert_eq!(
        checked.2, unchecked.2,
        "checked histogram must match unchecked"
    );

    let mut report = HarnessReport::new("racecheck_overhead");
    let mut wall_unchecked = f64::NAN;
    let mut min_unchecked = f64::NAN;
    let mut overhead = f64::NAN;
    for (engine, racecheck) in [("unchecked", false), ("checked", true)] {
        let iters = 8;
        black_box(scaling_launch_mode(1, racecheck)); // warm-up, untimed
        let mut walls = Vec::with_capacity(iters);
        for _ in 0..iters {
            let t0 = Instant::now();
            black_box(scaling_launch_mode(1, racecheck));
            walls.push(t0.elapsed().as_secs_f64());
        }
        let wall = walls.iter().sum::<f64>() / iters as f64;
        let wall_min = walls.iter().copied().fold(f64::INFINITY, f64::min);
        if !racecheck {
            wall_unchecked = wall;
            min_unchecked = wall_min;
        } else {
            // Noise-robust ratio: minimum over iterations on both sides
            // (the means can swing a few x on a loaded host).
            overhead = wall_min / min_unchecked;
        }
        report.push_row("blocks56", engine, unchecked.0, wall);
        report.annotate("overhead_vs_unchecked", wall / wall_unchecked);
        report.annotate("min_overhead_vs_unchecked", wall_min / min_unchecked);

        c.bench_function(&format!("racecheck_overhead_56blocks_{engine}"), |b| {
            b.iter(|| black_box(scaling_launch_mode(1, racecheck)))
        });
    }
    // Budget for checked mode, calibrated on this host rather than as an
    // absolute multiplier (an absolute 25x budget failed at pristine HEAD
    // on slow machines — the checked/unchecked ratio is host-dependent):
    // price the ratio on a one-wave 14-block launch of the same kernel,
    // then require the 56-block sweep to stay within 3x of it — the
    // analysis must scale with the work, not superlinearly in blocks.
    // (The observed 56-vs-14-block ratio sits below 2.5x even on a
    // loaded single-core host, so 3x leaves jitter headroom while
    // still flagging a blow-up in the per-block cost of the checker.)
    // The absolute 25x stays as a floor so sub-measurable calibration
    // ratios on fast hosts cannot turn jitter into failures.
    let calib_unchecked = min_wall(8, || {
        black_box(scaling_launch_blocks(1, false, 14));
    });
    let calib_checked = min_wall(8, || {
        black_box(scaling_launch_blocks(1, true, 14));
    });
    let calib = calib_checked / calib_unchecked;
    let budget = (3.0 * calib).max(25.0);
    report.annotate("calibration_overhead_14blocks", calib);
    report.annotate("budget", budget);
    println!(
        "bench racecheck_overhead 56 blocks {overhead:.1}x, 14-block calibration \
         {calib:.1}x, budget {budget:.1}x"
    );
    assert!(
        overhead <= budget,
        "racecheck overhead {overhead:.1}x exceeds the calibrated budget {budget:.1}x \
         (14-block same-host ratio {calib:.1}x)"
    );
    report.write_default();
}

/// Wall-clock cost of the telemetry span log on the same fixed launch.
/// Three modes share one interleaved timing loop (so load spikes hit all
/// of them equally): `baseline` is the plain launch with no telemetry
/// knob touched, `disabled` sets the knob off explicitly (the
/// one-predictable-branch path every production run takes), `enabled`
/// records a span per launch. Telemetry never changes what the simulator
/// computes, so the modes are first compared bit-for-bit and then timed.
fn bench_telemetry_overhead(c: &mut Criterion) {
    let baseline = scaling_launch_mode(1, false);
    for span_log in [false, true] {
        let got = scaling_launch_telemetry(span_log);
        assert_eq!(
            got.0.to_bits(),
            baseline.0.to_bits(),
            "span_log={span_log}: seconds"
        );
        assert_eq!(got.1, baseline.1, "span_log={span_log}: rows");
        assert_eq!(got.2, baseline.2, "span_log={span_log}: histogram");
    }

    type Mode = (&'static str, fn() -> (f64, Vec<u32>, Vec<u32>));
    let modes: [Mode; 3] = [
        ("baseline", || scaling_launch_mode(1, false)),
        ("disabled", || scaling_launch_telemetry(false)),
        ("enabled", || scaling_launch_telemetry(true)),
    ];
    let iters = 12;
    let mut walls = [const { Vec::new() }; 3];
    for (_, run) in &modes {
        black_box(run()); // warm-up, untimed
    }
    for _ in 0..iters {
        for (m, (_, run)) in modes.iter().enumerate() {
            let t0 = Instant::now();
            black_box(run());
            walls[m].push(t0.elapsed().as_secs_f64());
        }
    }
    let mean = |w: &[f64]| w.iter().sum::<f64>() / w.len() as f64;
    let min = |w: &[f64]| w.iter().copied().fold(f64::INFINITY, f64::min);
    let (base_mean, base_min) = (mean(&walls[0]), min(&walls[0]));

    let mut report = HarnessReport::new("telemetry_overhead");
    let mut min_ratios = [f64::NAN; 3];
    for (m, (engine, run)) in modes.iter().enumerate() {
        min_ratios[m] = min(&walls[m]) / base_min;
        report.push_row("blocks56", engine, baseline.0, mean(&walls[m]));
        report.annotate("overhead_vs_baseline", mean(&walls[m]) / base_mean);
        report.annotate("min_overhead_vs_baseline", min_ratios[m]);
        c.bench_function(&format!("telemetry_overhead_56blocks_{engine}"), |b| {
            b.iter(|| black_box(run()))
        });
    }
    // Budgets (noise-robust minimum-over-iterations ratios, as in
    // `bench_racecheck_overhead`): the disabled path adds only one
    // predictable branch per launch, the enabled path two clock reads and
    // one Vec push.
    assert!(
        min_ratios[1] <= 1.10,
        "disabled-telemetry overhead {:.3}x exceeds the 1.10x budget",
        min_ratios[1]
    );
    assert!(
        min_ratios[2] <= 3.0,
        "enabled-telemetry overhead {:.3}x exceeds the 3x budget",
        min_ratios[2]
    );
    report.write_default();
}

/// [`scaling_launch`] with the dynbc-memsim cache model toggled
/// explicitly — the disabled/enabled pair `bench_memsim_overhead`
/// compares (at an explicit block count so the 14-block same-host
/// calibration can share it).
fn scaling_launch_memsim(memsim: bool, blocks: usize) -> (f64, Vec<u32>, Vec<u32>) {
    scaling_launch_on(
        Gpu::new(DeviceConfig::tesla_c2075())
            .with_host_threads(1)
            .with_memsim(memsim),
        blocks,
    )
    .0
}

/// Wall-clock cost of the dynbc-memsim cache-hierarchy model on the same
/// fixed launch. Three interleaved modes as in `bench_telemetry_overhead`:
/// `baseline` never touches the knob, `disabled` sets it off explicitly
/// (one predictable branch per memory access), `enabled` drives every
/// 32 B transaction through the L1/L2 tag arrays. The model is
/// observability-only — simulated seconds and buffer contents are first
/// compared bit-for-bit, and a profiled memsim-off run must serialize
/// byte-identically to a profiled run on a simulator without the knob.
fn bench_memsim_overhead(c: &mut Criterion) {
    let baseline = scaling_launch_mode(1, false);
    for memsim in [false, true] {
        let got = scaling_launch_memsim(memsim, 56);
        assert_eq!(
            got.0.to_bits(),
            baseline.0.to_bits(),
            "memsim={memsim}: seconds"
        );
        assert_eq!(got.1, baseline.1, "memsim={memsim}: rows");
        assert_eq!(got.2, baseline.2, "memsim={memsim}: histogram");
    }
    // Byte-identical existing reports when off: a profiled memsim-off
    // simulator serializes exactly what a plain profiled one does.
    let profiled = |memsim: Option<bool>| {
        let mut g = Gpu::new(DeviceConfig::tesla_c2075());
        if let Some(on) = memsim {
            g.set_memsim(on);
        }
        g.set_profiling(true);
        scaling_launch_on(g, 56).1.take_profile_report()
    };
    let (plain, off) = (profiled(None), profiled(Some(false)));
    assert_eq!(plain.to_json(), off.to_json());
    assert_eq!(plain.chrome_trace_json(), off.chrome_trace_json());

    type Mode = (&'static str, fn() -> (f64, Vec<u32>, Vec<u32>));
    let modes: [Mode; 3] = [
        ("baseline", || scaling_launch_mode(1, false)),
        ("disabled", || scaling_launch_memsim(false, 56)),
        ("enabled", || scaling_launch_memsim(true, 56)),
    ];
    let iters = 12;
    let mut walls = [const { Vec::new() }; 3];
    for (_, run) in &modes {
        black_box(run()); // warm-up, untimed
    }
    for _ in 0..iters {
        for (m, (_, run)) in modes.iter().enumerate() {
            let t0 = Instant::now();
            black_box(run());
            walls[m].push(t0.elapsed().as_secs_f64());
        }
    }
    let mean = |w: &[f64]| w.iter().sum::<f64>() / w.len() as f64;
    let min = |w: &[f64]| w.iter().copied().fold(f64::INFINITY, f64::min);
    let (base_mean, base_min) = (mean(&walls[0]), min(&walls[0]));

    let mut report = HarnessReport::new("memsim_overhead");
    let mut min_ratios = [f64::NAN; 3];
    for (m, (engine, run)) in modes.iter().enumerate() {
        min_ratios[m] = min(&walls[m]) / base_min;
        report.push_row("blocks56", engine, baseline.0, mean(&walls[m]));
        report.annotate("overhead_vs_baseline", mean(&walls[m]) / base_mean);
        report.annotate("min_overhead_vs_baseline", min_ratios[m]);
        c.bench_function(&format!("memsim_overhead_56blocks_{engine}"), |b| {
            b.iter(|| black_box(run()))
        });
    }
    // Budgets. Disabled is one predictable branch per access: the flat
    // 1.10x cap every off-by-default layer gets. Enabled probes two tag
    // arrays per transaction, so its budget is calibrated on this host
    // (as in `bench_racecheck_overhead`): price the enabled/baseline
    // ratio on a one-wave 14-block launch, then require the 56-block
    // sweep to stay within 3x of it — the model must scale with the
    // traffic, not superlinearly in blocks. A 15x absolute floor keeps
    // sub-measurable calibration ratios on fast hosts from turning
    // jitter into failures.
    let calib_base = min_wall(8, || {
        black_box(scaling_launch_memsim(false, 14));
    });
    let calib_enabled = min_wall(8, || {
        black_box(scaling_launch_memsim(true, 14));
    });
    let calib = calib_enabled / calib_base;
    let budget = (3.0 * calib).max(15.0);
    report.annotate("calibration_overhead_14blocks", calib);
    report.annotate("budget", budget);
    println!(
        "bench memsim_overhead 56 blocks disabled {:.3}x enabled {:.1}x, 14-block \
         calibration {calib:.1}x, budget {budget:.1}x",
        min_ratios[1], min_ratios[2]
    );
    assert!(
        min_ratios[1] <= 1.10,
        "disabled-memsim overhead {:.3}x exceeds the 1.10x budget",
        min_ratios[1]
    );
    assert!(
        min_ratios[2] <= budget,
        "enabled-memsim overhead {:.1}x exceeds the calibrated budget {budget:.1}x \
         (14-block same-host ratio {calib:.1}x)",
        min_ratios[2]
    );
    report.write_default();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sorting, bench_dedup, bench_mlq, bench_graph, bench_dynamic_update,
        bench_launch_scaling, bench_batch_throughput, bench_racecheck_overhead,
        bench_telemetry_overhead, bench_memsim_overhead
}
criterion_main!(benches);
