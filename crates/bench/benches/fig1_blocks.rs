//! Figure 1: static-BC speedup vs number of thread blocks on two devices.
//!
//! The paper sweeps the block count for exact static BC on three DIMACS
//! graphs, on a GTX 560 (7 SMs) and a Tesla C2075 (14 SMs), finding that
//! "the best performance is obtained by setting the number of thread
//! blocks to be equal to the number of SMs or a multiple thereof". We
//! sweep the same block counts on three suite graphs (exact BC on small
//! instances, as in the paper: "the largest graphs that are still
//! feasible for an exact computation").

use dynbc_bc::gpu::{static_bc_gpu, Parallelism};
use dynbc_bench::table::Table;
use dynbc_bench::Config;
use dynbc_gpusim::DeviceConfig;
use dynbc_graph::suite::entry_by_short;
use dynbc_graph::Csr;

fn main() {
    let cfg = Config::from_env(0.04, usize::MAX, 0);
    println!(
        "== Figure 1: static BC speedup vs thread blocks (scale={}) ==\n",
        cfg.scale
    );
    let graphs = ["caida", "pref", "small"];
    let blocks = [1usize, 2, 4, 7, 8, 14, 16, 21, 28, 42, 56];
    let devices = [DeviceConfig::gtx560(), DeviceConfig::tesla_c2075()];

    let mut all_ok = true;
    for device in devices {
        println!("-- {} ({} SMs) --", device.name, device.num_sms);
        let mut table = Table::new(
            std::iter::once("Graph".to_string())
                .chain(blocks.iter().map(|b| format!("B={b}")))
                .collect(),
        );
        for short in graphs {
            let entry = entry_by_short(short).unwrap();
            let el = entry.generate(cfg.scale, cfg.seed);
            let csr = Csr::from_edge_list(&el);
            // Exact BC: every vertex is a source (as in the paper's Fig. 1).
            let sources: Vec<u32> = (0..csr.vertex_count() as u32).collect();
            let times: Vec<f64> = blocks
                .iter()
                .map(|&b| static_bc_gpu(device, &csr, &sources, Parallelism::Node, b).seconds)
                .collect();
            let base = times[0];
            let speedups: Vec<f64> = times.iter().map(|t| base / t).collect();
            table.row(
                std::iter::once(format!("{short} (n={})", csr.vertex_count()))
                    .chain(speedups.iter().map(|s| format!("{s:.2}")))
                    .collect(),
            );
            // Shape: speedup at B = num_sms within 10% of the best over
            // the sweep, and B > num_sms gains little over B = num_sms.
            let at_sms = speedups[blocks.iter().position(|&b| b == device.num_sms).unwrap()];
            let best = speedups.iter().copied().fold(0.0, f64::max);
            let ok = at_sms >= 0.9 * best;
            if !ok {
                println!(
                    "  !! {short}: speedup at B={} is {at_sms:.2}, best {best:.2}",
                    device.num_sms
                );
            }
            all_ok &= ok;
        }
        println!("{}", table.render());
    }
    println!(
        "paper-shape check: one block per SM achieves ≥ 90% of the best \
         speedup on every graph and device => {}",
        if all_ok { "PASS" } else { "FAIL" }
    );
    assert!(all_ok, "Figure 1 shape did not reproduce");
}
