//! `serve_throughput` — prices the serving layer against raw engine
//! throughput (ISSUE 9 acceptance criterion).
//!
//! Workload: a NetworKit-shaped interleaved removal/re-addition stream
//! (spanning-tree tabu, fixed lag) over a BA(300, 4) graph with 24
//! sources — the client shape of the dynamic-BC experiment scripts.
//!
//! Two runs over the same stream on the same engine kind:
//!
//! * **raw** — `CpuDynamicBc::apply_batch` in fixed batches of 64, no
//!   service in the way: the ceiling.
//! * **serve** — a `dynbc-serve` shard (bounded queue, adaptive width
//!   up to 64) while **8 concurrent reader threads** issue top-k
//!   queries against the lock-free snapshot chain, throttled to ~1ms
//!   between queries so the single-core CI host's writer is not
//!   starved by pure spin.
//!
//! The gate: sustained serve ingest within 10% of raw throughput. Read
//! p99 is reported alongside.
//!
//! Correctness leg: an audit cursor steps the snapshot chain epoch by
//! epoch ([`SnapshotReader::advance`]), recovering the exact batch
//! partition the shard's adaptive width chose. A raw engine then
//! replays the stream with that same partition and the served final
//! scores must match it bit for bit. (Removal updates are *not*
//! batch-partition-invariant — fusing removals reorders the
//! floating-point accumulation — so comparing against the fixed-64 raw
//! run would be ill-posed; insert-only invariance is covered by the
//! `snapshot_consistency` suite.)

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dynbc_bc::brandes::sample_sources;
use dynbc_bc::CpuDynamicBc;
use dynbc_bench::{stream, HarnessReport};
use dynbc_gpusim::knob;
use dynbc_graph::gen;
use dynbc_serve::{ServeConfig, Shard, ShardEngine, SubmitError};
use rand::rngs::StdRng;
use rand::SeedableRng;

const READERS: usize = 8;
const TOP_K: usize = 10;
const BATCH: usize = 64;

fn main() {
    let seed: u64 = knob::parse_from_env(knob::SEED_ENV, 20140519);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 300usize;
    let el = gen::ba(&mut rng, n, 4);
    let sources = sample_sources(&mut rng, n, 24);
    let tabu = stream::spanning_forest_tabu(&el);
    let events = stream::interleaved(&el, 256, 8, &tabu, &mut rng);
    let total = events.len();

    // --- raw ceiling: one warm pass on a throwaway engine, then the
    // measured run on a fresh one ---------------------------------------
    let mut warm = CpuDynamicBc::new(&el, &sources);
    for chunk in events.chunks(BATCH) {
        warm.apply_batch(chunk);
    }
    drop(warm);
    let mut raw_eng = CpuDynamicBc::new(&el, &sources);
    let mut raw_model = 0.0f64;
    let t0 = Instant::now();
    for chunk in events.chunks(BATCH) {
        raw_model += raw_eng.apply_batch(chunk).model_seconds;
    }
    let raw_wall = t0.elapsed().as_secs_f64();
    let raw_ups = total as f64 / raw_wall;

    // --- serve run under concurrent readers ---------------------------
    let cfg = ServeConfig {
        queue_cap: 1024,
        batch_max: BATCH,
        telemetry: false,
    };
    let shard = Shard::spawn(ShardEngine::cpu(CpuDynamicBc::new(&el, &sources)), &cfg);
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let mut reader = shard.reader();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut lat_s = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let t = Instant::now();
                    let snap = reader.latest().clone();
                    std::hint::black_box(snap.top_k(TOP_K));
                    lat_s.push(t.elapsed().as_secs_f64());
                    // Throttle: unthrottled spinning readers would starve
                    // the writer on a single-core host.
                    std::thread::sleep(Duration::from_millis(1));
                }
                lat_s
            })
        })
        .collect();

    // The audit cursor is taken before any submission so it starts at
    // epoch 0 and `advance()` observes every epoch the worker publishes;
    // the per-epoch `ops_applied` deltas are the shard's actual batch
    // partition.
    let mut audit = shard.reader();
    let mut widths: Vec<usize> = Vec::new();
    let mut audited: u64 = audit.current().ops_applied();
    let t0 = Instant::now();
    for &op in &events {
        loop {
            match shard.submit(op) {
                Ok(()) => break,
                Err(SubmitError::Backpressure) => std::thread::yield_now(),
                Err(e) => panic!("submit failed: {e}"),
            }
        }
    }
    while audited < total as u64 {
        match audit.advance() {
            Some(snap) => {
                widths.push((snap.ops_applied() - audited) as usize);
                audited = snap.ops_applied();
            }
            None => std::thread::yield_now(),
        }
    }
    let serve_wall = t0.elapsed().as_secs_f64();
    let serve_ups = total as f64 / serve_wall;

    stop.store(true, Ordering::Relaxed);
    let mut lat_s: Vec<f64> = readers
        .into_iter()
        .flat_map(|h| h.join().expect("reader panicked"))
        .collect();
    lat_s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let reads = lat_s.len();
    let p99 = lat_s[(reads * 99) / 100 - 1];

    let (_engine, last) = shard.shutdown();

    // Correctness: replay the shard's exact batch partition on a fresh
    // raw engine; the served scores must match it bit for bit.
    assert_eq!(widths.iter().sum::<usize>(), total, "audit saw every op");
    let mut oracle = CpuDynamicBc::new(&el, &sources);
    let mut off = 0usize;
    for &w in &widths {
        oracle.apply_batch(&events[off..off + w]);
        off += w;
    }
    let serve_bits: Vec<u64> = last.scores().iter().map(|x| x.to_bits()).collect();
    let oracle_bits: Vec<u64> = oracle.state().bc.iter().map(|x| x.to_bits()).collect();
    assert_eq!(
        serve_bits, oracle_bits,
        "served scores must be bit-identical to a raw engine replaying \
         the shard's batch partition"
    );

    let ratio = serve_ups / raw_ups;
    let mut report = HarnessReport::new("serve_throughput");
    report.push_row("ba300_k24_stream512", "raw_batch64", raw_model, raw_wall);
    report.annotate("updates_per_sec", raw_ups);
    report.push_row(
        "ba300_k24_stream512",
        "serve_8readers",
        raw_model,
        serve_wall,
    );
    report.annotate("updates_per_sec", serve_ups);
    report.annotate("ingest_vs_raw", ratio);
    report.annotate("serve_batches", widths.len() as f64);
    report.annotate("readers", READERS as f64);
    report.annotate("reads_total", reads as f64);
    report.annotate("read_p99_seconds", p99);
    println!(
        "bench serve_throughput raw {raw_ups:.0} updates/sec, serve {serve_ups:.0} \
         updates/sec ({:.1}% of raw) under {READERS} readers, {reads} reads, \
         read p99 {:.1}us",
        ratio * 100.0,
        p99 * 1e6
    );
    assert!(
        ratio >= 0.9,
        "serve ingest {serve_ups:.0} updates/sec fell below 90% of raw \
         {raw_ups:.0} updates/sec ({:.1}%)",
        ratio * 100.0
    );
    if let Some(path) = report.write_default() {
        println!("serve_throughput: wrote {}", path.display());
    }
}
