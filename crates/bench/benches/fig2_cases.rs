//! Figure 2: distribution of update scenarios (Cases 1/2/3) across
//! (source × insertion) pairs for the benchmark suite.
//!
//! Paper headline: Case 2 is 37.3 % of all scenarios and 73.5 % of the
//! scenarios that require work; Case 1 (no work) is the plurality. The
//! shape check asserts Case 2 dominates the work cases and that Case 1 is
//! a substantial share.

use dynbc_bc::cases::CaseCounts;
use dynbc_bench::table::Table;
use dynbc_bench::{build_setup, paper, run_cpu, Config};
use dynbc_graph::suite::TABLE_I;

fn main() {
    let cfg = Config::from_env(0.5, 32, 40);
    println!(
        "== Figure 2: scenario distribution ({}) ==\n",
        cfg.describe()
    );

    let mut table = Table::new(vec![
        "Graph",
        "Scenarios",
        "Case1 %",
        "Case2 %",
        "Case3 %",
        "Case2 % of work",
    ]);
    let mut total = CaseCounts::default();
    for entry in &TABLE_I {
        let setup = build_setup(entry, &cfg);
        let run = run_cpu(&setup);
        let mut counts = CaseCounts::default();
        for r in &run.per_insertion {
            counts.add(&r.cases);
        }
        total.add(&counts);
        table.row(vec![
            entry.short.to_string(),
            counts.total().to_string(),
            format!("{:.1}", 100.0 * counts.same as f64 / counts.total() as f64),
            format!("{:.1}", 100.0 * counts.adjacent_share()),
            format!(
                "{:.1}",
                100.0 * counts.distant as f64 / counts.total() as f64
            ),
            format!("{:.1}", 100.0 * counts.adjacent_share_of_work()),
        ]);
    }
    table.row(vec![
        "ALL".to_string(),
        total.total().to_string(),
        format!("{:.1}", 100.0 * total.same as f64 / total.total() as f64),
        format!("{:.1}", 100.0 * total.adjacent_share()),
        format!("{:.1}", 100.0 * total.distant as f64 / total.total() as f64),
        format!("{:.1}", 100.0 * total.adjacent_share_of_work()),
    ]);
    println!("{}", table.render());
    println!(
        "paper (full scale): Case2 = {:.1}% of all, {:.1}% of work cases",
        100.0 * paper::FIG2_CASE2_SHARE,
        100.0 * paper::FIG2_CASE2_SHARE_OF_WORK
    );

    // Shape checks.
    let case2_work_share = total.adjacent_share_of_work();
    let case1_share = total.same as f64 / total.total() as f64;
    let ok = case2_work_share > 0.5 && case1_share > 0.2;
    println!(
        "\npaper-shape check: Case2 dominates work cases ({:.1}% > 50%) \
         and Case1 is substantial ({:.1}% > 20%) => {}",
        100.0 * case2_work_share,
        100.0 * case1_share,
        if ok { "PASS" } else { "FAIL" }
    );
    assert!(ok, "Figure 2 shape did not reproduce");
}
