//! Log-linear histogram with deterministic quantile queries.
//!
//! Buckets are derived from the IEEE-754 bit pattern of the sample: the
//! exponent selects an octave and the top [`SUB_BITS`] mantissa bits select
//! a linear sub-bucket inside it, so bucketing involves no floating-point
//! arithmetic and two runs observing the same multiset of samples produce
//! bit-identical histograms (and therefore bit-identical quantiles)
//! regardless of host-thread count or observation interleaving.

use std::fmt::Write as _;

/// Mantissa bits used for linear sub-buckets: 2^3 = 8 sub-buckets per octave.
const SUB_BITS: u32 = 3;
/// Linear sub-buckets per power-of-two octave.
const SUB: usize = 1 << SUB_BITS;
/// Smallest tracked exponent: samples below `2^MIN_EXP` (~9.1e-13) land in
/// the underflow bucket. Model-seconds for a single edge op sit far above.
const MIN_EXP: i32 = -40;
/// One past the largest tracked exponent: samples at or above `2^MAX_EXP`
/// (~1.7e7) land in the overflow bucket.
const MAX_EXP: i32 = 24;
/// Total log-linear buckets.
const BUCKETS: usize = (MAX_EXP - MIN_EXP) as usize * SUB;

/// Where a finite sample landed.
enum Slot {
    /// Exactly zero or negative (clamped).
    Zero,
    /// Positive but below `2^MIN_EXP`.
    Underflow,
    /// Regular log-linear bucket.
    Bucket(usize),
    /// At or above `2^MAX_EXP`.
    Overflow,
}

/// A fixed-shape log-linear histogram.
///
/// All histograms share the same bucket boundaries, so merging is a
/// position-wise add and exposition output is comparable across runs.
/// Quantiles return the *upper bound* of the bucket containing the ranked
/// sample (conservative: never under-reports a latency percentile).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Samples that were `<= 0.0` (zero bucket; upper bound 0).
    zero: u64,
    /// Positive samples below the first tracked octave.
    underflow: u64,
    /// Log-linear bucket counts, ascending by upper bound.
    buckets: Vec<u64>,
    /// Samples at or above the last tracked octave.
    overflow: u64,
    /// Total samples observed (including zero/underflow/overflow).
    count: u64,
    /// Sum of all observed sample values.
    sum: f64,
    /// Smallest observed sample (`+inf` when empty).
    min: f64,
    /// Largest observed sample (`-inf` when empty).
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            zero: 0,
            underflow: 0,
            buckets: vec![0; BUCKETS],
            overflow: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Classify a finite sample. Caller has excluded NaN.
    fn slot(v: f64) -> Slot {
        if v <= 0.0 {
            return Slot::Zero;
        }
        if v.is_infinite() {
            return Slot::Overflow;
        }
        let bits = v.to_bits();
        let raw_exp = ((bits >> 52) & 0x7ff) as i32;
        if raw_exp == 0 {
            // Subnormal: far below MIN_EXP.
            return Slot::Underflow;
        }
        let e = raw_exp - 1023;
        if e < MIN_EXP {
            return Slot::Underflow;
        }
        if e >= MAX_EXP {
            return Slot::Overflow;
        }
        let sub = ((bits >> (52 - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        Slot::Bucket((e - MIN_EXP) as usize * SUB + sub)
    }

    /// Upper bound of log-linear bucket `idx`.
    fn upper(idx: usize) -> f64 {
        let e = MIN_EXP + (idx / SUB) as i32;
        let sub = (idx % SUB) as f64;
        f64::exp2(e as f64) * (1.0 + (sub + 1.0) / SUB as f64)
    }

    /// Record one sample. NaN samples are ignored; negative samples count
    /// into the zero bucket (latencies and fractions are never negative).
    pub fn observe(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        match Self::slot(v) {
            Slot::Zero => self.zero += 1,
            Slot::Underflow => self.underflow += 1,
            Slot::Bucket(i) => self.buckets[i] += 1,
            Slot::Overflow => self.overflow += 1,
        }
        self.count += 1;
        if v.is_finite() {
            self.sum += v;
        }
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Add another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.zero += other.zero;
        self.underflow += other.underflow;
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observed sample, or 0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observed sample, or 0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Deterministic quantile: the upper bound of the bucket holding the
    /// sample of rank `ceil(q * count)` (1-based). Returns 0 when empty.
    /// `q` is clamped to `[0, 1]`; `quantile(1.0)` returns the recorded
    /// maximum rather than a bucket bound.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return self.max();
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = self.zero;
        if rank <= cum {
            return 0.0;
        }
        cum += self.underflow;
        if rank <= cum {
            // Everything below the tracked range reports the range floor.
            return f64::exp2(MIN_EXP as f64);
        }
        for (idx, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if rank <= cum {
                return Self::upper(idx);
            }
        }
        self.max()
    }

    /// Median (`quantile(0.5)`).
    pub fn p50(&self) -> f64 {
        self.quantile(0.5)
    }

    /// 90th percentile.
    pub fn p90(&self) -> f64 {
        self.quantile(0.9)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Append Prometheus `_bucket`/`_sum`/`_count` sample lines for this
    /// histogram under metric family `name`. Only non-empty buckets emit a
    /// line (cumulative counts stay correct because `le` is cumulative);
    /// the `+Inf` bucket is always present.
    pub fn prometheus_lines(&self, name: &str, out: &mut String) {
        self.prometheus_lines_labelled(name, "", out);
    }

    /// [`Histogram::prometheus_lines`] for a labelled series: `labels` is
    /// the rendered label set of the series (`{tenant="a"}`, or empty for
    /// the unlabelled series) and is merged into each sample line —
    /// `name_bucket{tenant="a",le="…"}`, `name_sum{tenant="a"}`, ….
    pub fn prometheus_lines_labelled(&self, name: &str, labels: &str, out: &mut String) {
        // The series labels minus their braces, ready to prefix `le`.
        let inner = labels
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .unwrap_or("");
        let le_open = if inner.is_empty() {
            "{".to_string()
        } else {
            format!("{{{inner},")
        };
        let mut cum = 0u64;
        if self.zero > 0 {
            cum += self.zero;
            let _ = writeln!(out, "{name}_bucket{le_open}le=\"0\"}} {cum}");
        }
        if self.underflow > 0 {
            cum += self.underflow;
            let _ = writeln!(
                out,
                "{name}_bucket{le_open}le=\"{}\"}} {cum}",
                f64::exp2(MIN_EXP as f64)
            );
        }
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                cum += c;
                let _ = writeln!(
                    out,
                    "{name}_bucket{le_open}le=\"{}\"}} {cum}",
                    Self::upper(idx)
                );
            }
        }
        let _ = writeln!(out, "{name}_bucket{le_open}le=\"+Inf\"}} {}", self.count);
        let _ = writeln!(out, "{name}_sum{labels} {}", self.sum);
        let _ = writeln!(out, "{name}_count{labels} {}", self.count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.quantile(0.99), 0.0);
    }

    #[test]
    fn single_sample_quantiles_cover_it() {
        let mut h = Histogram::new();
        h.observe(0.125);
        assert_eq!(h.count(), 1);
        // Every quantile of a one-sample histogram is that sample's bucket
        // (p100 is the exact max).
        let p50 = h.quantile(0.5);
        assert!(p50 >= 0.125, "upper bound covers the sample: {p50}");
        assert!(p50 <= 0.125 * (1.0 + 1.0 / 8.0), "within one sub-bucket");
        assert_eq!(h.quantile(1.0), 0.125);
    }

    #[test]
    fn bucket_boundaries_are_log_linear() {
        // 1.0 has exponent 0, mantissa 0 → first sub-bucket of its octave:
        // upper bound 1 + 1/8.
        let mut h = Histogram::new();
        h.observe(1.0);
        assert_eq!(h.quantile(0.5), 1.0 + 1.0 / 8.0);
        // 1.5 = 1 + 4/8 → sub-bucket 4, upper bound 1 + 5/8.
        let mut h = Histogram::new();
        h.observe(1.5);
        assert_eq!(h.quantile(0.5), 1.0 + 5.0 / 8.0);
        // A value just under an octave boundary stays in the top sub-bucket.
        let mut h = Histogram::new();
        h.observe(1.999);
        assert_eq!(h.quantile(0.5), 2.0);
        // The octave boundary itself starts the next octave.
        let mut h = Histogram::new();
        h.observe(2.0);
        assert_eq!(h.quantile(0.5), 2.0 * (1.0 + 1.0 / 8.0));
    }

    #[test]
    fn exact_percentiles_on_known_population() {
        // 100 samples: 1.0 × 50, 2.0 × 40, 4.0 × 10. Ranks: p50 → rank 50
        // (in the 1.0 bucket), p90 → rank 90 (2.0 bucket), p99 → rank 99
        // (4.0 bucket).
        let mut h = Histogram::new();
        for _ in 0..50 {
            h.observe(1.0);
        }
        for _ in 0..40 {
            h.observe(2.0);
        }
        for _ in 0..10 {
            h.observe(4.0);
        }
        assert_eq!(h.p50(), 1.0 + 1.0 / 8.0);
        assert_eq!(h.p90(), 2.0 * (1.0 + 1.0 / 8.0));
        assert_eq!(h.p99(), 4.0 * (1.0 + 1.0 / 8.0));
        assert_eq!(h.quantile(0.0), 1.0 + 1.0 / 8.0); // rank clamps to 1
        assert_eq!(h.quantile(1.0), 4.0);
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 50.0 + 80.0 + 40.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 4.0);
    }

    #[test]
    fn zero_underflow_overflow_are_tracked() {
        let mut h = Histogram::new();
        h.observe(0.0);
        h.observe(-3.0); // clamped into the zero bucket
        h.observe(1e-300); // far below 2^MIN_EXP
        h.observe(1e30); // far above 2^MAX_EXP
        h.observe(f64::NAN); // ignored
        assert_eq!(h.count(), 4);
        assert_eq!(h.quantile(0.25), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.quantile(0.75), f64::exp2(MIN_EXP as f64));
        assert_eq!(h.quantile(1.0), 1e30);
    }

    #[test]
    fn merge_matches_sequential_observation() {
        let samples_a = [0.001, 0.5, 3.0, 7.5];
        let samples_b = [0.002, 0.5, 100.0];
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut both = Histogram::new();
        for &s in &samples_a {
            ha.observe(s);
            both.observe(s);
        }
        for &s in &samples_b {
            hb.observe(s);
            both.observe(s);
        }
        ha.merge(&hb);
        assert_eq!(ha, both);
    }

    #[test]
    fn prometheus_lines_are_cumulative_and_end_with_inf() {
        let mut h = Histogram::new();
        h.observe(1.0);
        h.observe(1.0);
        h.observe(2.0);
        let mut out = String::new();
        h.prometheus_lines("m", &mut out);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "m_bucket{le=\"1.125\"} 2");
        assert_eq!(lines[1], "m_bucket{le=\"2.25\"} 3");
        assert_eq!(lines[2], "m_bucket{le=\"+Inf\"} 3");
        assert_eq!(lines[3], "m_sum 4");
        assert_eq!(lines[4], "m_count 3");
    }
}
