//! Exporters: unified Chrome/Perfetto trace (host pipeline spans + device
//! kernel profiles on one timeline) and small hand-rolled JSON helpers.

use std::fmt::Write as _;

use dynbc_prof::ProfileReport;

use crate::trace::Trace;

/// JSON string literal with the escapes phase names can contain.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite JSON number (JSON has no NaN/Inf; clamp to null).
pub(crate) fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Render the host-pipeline trace and any number of device kernel profiles
/// as one Chrome trace-event JSON document.
///
/// Track layout (Perfetto shows one process group per pid):
///
/// * pid 0 "host pipeline" — lifecycle spans; tid = [`crate::Span::track`]
///   (0 = main pipeline, the multi-GPU engine adds one track per device).
///   On-clock spans are complete (`"X"`) events; off-clock phases are
///   instant (`"i"`) events with their wall cost in `args`.
/// * pid 1+d — one process per entry of `devices`, named by its label:
///   kernel launches on tid 0, per-SM block spans on tid 1+sm.
///
/// All timestamps are the simulated clock in microseconds, the same clock
/// [`dynbc_prof::ProfileReport::chrome_trace_json`] uses, so host stages
/// and kernel spans line up.
pub fn unified_chrome_trace(trace: &Trace, devices: &[(String, &ProfileReport)]) -> String {
    let mut out = String::from("{\"traceEvents\": [\n");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
    };
    sep(&mut out);
    out.push_str(
        "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \
         \"args\": {\"name\": \"host pipeline\"}}",
    );
    for (d, (label, _)) in devices.iter().enumerate() {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {}, \"args\": {{\"name\": {}}}}}",
            1 + d,
            json_string(label),
        );
    }
    for s in trace.spans() {
        sep(&mut out);
        let mut args = format!("\"wall_ms\": {}", json_number(s.wall_s * 1e3));
        for (k, v) in &s.args {
            let _ = write!(args, ", {}: {}", json_string(k), json_number(*v));
        }
        if s.dur_s > 0.0 {
            let _ = write!(
                out,
                "{{\"name\": {}, \"cat\": \"pipeline\", \"ph\": \"X\", \"pid\": 0, \
                 \"tid\": {}, \"ts\": {}, \"dur\": {}, \"args\": {{{args}}}}}",
                json_string(&s.name),
                s.track,
                json_number(s.start_s * 1e6),
                json_number(s.dur_s * 1e6),
            );
        } else {
            let _ = write!(
                out,
                "{{\"name\": {}, \"cat\": \"pipeline\", \"ph\": \"i\", \"s\": \"t\", \
                 \"pid\": 0, \"tid\": {}, \"ts\": {}, \"args\": {{{args}}}}}",
                json_string(&s.name),
                s.track,
                json_number(s.start_s * 1e6),
            );
        }
    }
    for (d, (_, report)) in devices.iter().enumerate() {
        let pid = 1 + d;
        for l in &report.launches {
            sep(&mut out);
            // Memsim hit rates ride along only when the launch carried
            // cache counters, so traces without DYNBC_MEMSIM are unchanged.
            let cache = if l.total.cache.is_empty() {
                String::new()
            } else {
                format!(
                    ", \"l1_hit_rate\": {}, \"l2_hit_rate\": {}",
                    json_number(l.total.cache.l1_hit_rate()),
                    json_number(l.total.cache.l2_hit_rate()),
                )
            };
            let _ = write!(
                out,
                "{{\"name\": {}, \"cat\": \"launch\", \"ph\": \"X\", \"pid\": {pid}, \
                 \"tid\": 0, \"ts\": {}, \"dur\": {}, \"args\": {{\"index\": {}, \
                 \"num_blocks\": {}, \"occupancy\": {}{cache}}}}}",
                json_string(&l.kernel),
                json_number(l.start_s * 1e6),
                json_number(l.seconds * 1e6),
                l.index,
                l.num_blocks,
                json_number(l.total.occupancy()),
            );
            if !l.total.cache.is_empty() {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\": \"L1/L2 hit rate\", \"cat\": \"memsim\", \"ph\": \"C\", \
                     \"pid\": {pid}, \"tid\": 0, \"ts\": {}, \"args\": {{\"l1\": {}, \
                     \"l2\": {}}}}}",
                    json_number(l.start_s * 1e6),
                    json_number(l.total.cache.l1_hit_rate()),
                    json_number(l.total.cache.l2_hit_rate()),
                );
            }
            for b in &l.blocks {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\": {}, \"cat\": \"block\", \"ph\": \"X\", \"pid\": {pid}, \
                     \"tid\": {}, \"ts\": {}, \"dur\": {}, \"args\": {{\"block\": {}}}}}",
                    json_string(&format!("{}#b{}", l.kernel, b.block)),
                    1 + b.sm,
                    json_number(b.start_s * 1e6),
                    json_number(b.dur_s * 1e6),
                    b.block,
                );
            }
        }
    }
    out.push_str("\n],\n\"displayTimeUnit\": \"ms\",\n");
    let _ = writeln!(
        out,
        "\"metadata\": {{\"clock\": \"simulated\", \"devices\": {}}}}}",
        devices.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Span;
    use dynbc_prof::{CacheCounters, Counters, LaunchProfile};

    fn report(cache: CacheCounters) -> ProfileReport {
        let mut report = ProfileReport::default();
        report.launches.push(LaunchProfile {
            kernel: "k".to_string(),
            index: 0,
            num_blocks: 1,
            start_s: 0.0,
            seconds: 1e-6,
            stages: Vec::new(),
            total: Counters {
                cache,
                ..Counters::default()
            },
            blocks: Vec::new(),
            wall_s: 0.0,
        });
        report
    }

    #[test]
    fn memsim_counters_add_a_hit_rate_track_only_when_present() {
        let t = Trace::new();
        let plain = report(CacheCounters::default());
        let json = unified_chrome_trace(&t, &[("gpu0".to_string(), &plain)]);
        assert!(!json.contains("hit_rate"), "{json}");
        assert!(!json.contains("\"ph\": \"C\""), "{json}");

        let cached = report(CacheCounters {
            l1_hits: 3,
            l1_misses: 1,
            l2_hits: 1,
            l2_misses: 0,
            l2_sector_fills: 0,
            ..CacheCounters::default()
        });
        let json = unified_chrome_trace(&t, &[("gpu0".to_string(), &cached)]);
        assert!(json.contains("\"l1_hit_rate\": 0.75"), "{json}");
        assert!(json.contains("\"L1/L2 hit rate\""), "{json}");
        assert!(json.contains("\"ph\": \"C\""), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn unified_trace_has_process_tracks_and_both_event_kinds() {
        let mut t = Trace::new();
        t.push(Span::new("update", 0, 0.0, 1.0).wall(0.5));
        t.push(Span::instant("validate", 1, 0.0, 0.001));
        let json = unified_chrome_trace(&t, &[]);
        assert!(json.contains("\"host pipeline\""), "{json}");
        assert!(json.contains("\"ph\": \"X\""), "{json}");
        assert!(json.contains("\"ph\": \"i\""), "{json}");
        assert!(json.contains("\"displayTimeUnit\""), "{json}");
        // Balanced braces: crude structural check.
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close, "{json}");
    }
}
