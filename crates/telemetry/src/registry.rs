//! Metric registry: named families of counters, gauges, and histograms
//! with Prometheus text-exposition output.
//!
//! Families are stored in definition order and series within a family in
//! first-touch order, so exposition output is deterministic. Every family
//! carries a [`Clock`] tag: `Model` families are derived from the
//! simulator's deterministic cost model (bit-identical for any
//! `DYNBC_HOST_THREADS`), `Wall` families measure real host time and vary
//! run to run. [`Registry::prometheus_deterministic`] renders only the
//! `Model` families, which is what the determinism tests compare.

use std::fmt::Write as _;

use crate::hist::Histogram;

/// Which clock a metric family is derived from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clock {
    /// Simulated/model clock or pure event counts: bit-deterministic.
    Model,
    /// Host wall clock: varies run to run, excluded from determinism
    /// comparisons.
    Wall,
}

/// Kind (and value storage) of a metric family.
#[derive(Debug, Clone, PartialEq)]
enum Kind {
    /// Monotonic integer counter.
    Counter,
    /// Last-write-wins floating-point gauge.
    Gauge,
    /// Log-linear distribution.
    Histogram,
}

/// One labelled series inside a family.
#[derive(Debug, Clone, PartialEq)]
struct Series {
    /// Rendered label set, e.g. `{case="same"}`; empty for unlabelled.
    labels: String,
    /// Counter value (Counter kind).
    counter: u64,
    /// Gauge value (Gauge kind).
    gauge: f64,
    /// Distribution (Histogram kind); boxed to keep unlabelled families
    /// cheap.
    hist: Option<Box<Histogram>>,
}

/// A named metric family.
#[derive(Debug, Clone, PartialEq)]
struct Family {
    name: String,
    help: String,
    kind: Kind,
    clock: Clock,
    series: Vec<Series>,
}

/// Definition-ordered collection of metric families.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    families: Vec<Family>,
}

/// Render a label set (`&[("case", "same")]`) into Prometheus syntax.
fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{k}=\"{}\"",
            v.replace('\\', "\\\\").replace('"', "\\\"")
        );
    }
    out.push('}');
    out
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Define a family; `kind`-specific accessors create series lazily.
    fn define(&mut self, name: &str, help: &str, kind: Kind, clock: Clock) {
        debug_assert!(
            !self.families.iter().any(|f| f.name == name),
            "duplicate metric family {name}"
        );
        self.families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            clock,
            series: Vec::new(),
        });
    }

    /// Define a counter family.
    pub fn define_counter(&mut self, name: &str, help: &str, clock: Clock) {
        self.define(name, help, Kind::Counter, clock);
    }

    /// Define a gauge family.
    pub fn define_gauge(&mut self, name: &str, help: &str, clock: Clock) {
        self.define(name, help, Kind::Gauge, clock);
    }

    /// Define a histogram family.
    pub fn define_histogram(&mut self, name: &str, help: &str, clock: Clock) {
        self.define(name, help, Kind::Histogram, clock);
    }

    /// Whether a family named `name` has been defined. Lets collectors
    /// define opt-in families (e.g. the memsim set) on first use, so the
    /// exposition output of runs that never feed them stays byte-identical
    /// to builds that predate the family.
    pub fn is_defined(&self, name: &str) -> bool {
        self.families.iter().any(|f| f.name == name)
    }

    /// Find or create the series for `labels` in family `name`.
    fn series_mut(&mut self, name: &str, labels: &[(&str, &str)]) -> &mut Series {
        let fam = self
            .families
            .iter_mut()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("metric family {name} not defined"));
        let rendered = render_labels(labels);
        let idx = match fam.series.iter().position(|s| s.labels == rendered) {
            Some(i) => i,
            None => {
                fam.series.push(Series {
                    labels: rendered,
                    counter: 0,
                    gauge: 0.0,
                    hist: matches!(fam.kind, Kind::Histogram).then(|| Box::new(Histogram::new())),
                });
                fam.series.len() - 1
            }
        };
        &mut fam.series[idx]
    }

    /// Increment a counter series by `by`.
    pub fn inc(&mut self, name: &str, labels: &[(&str, &str)], by: u64) {
        self.series_mut(name, labels).counter += by;
    }

    /// Set a gauge series.
    pub fn set_gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.series_mut(name, labels).gauge = value;
    }

    /// Record a sample into a histogram series.
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.series_mut(name, labels)
            .hist
            .as_mut()
            .expect("observe on non-histogram family")
            .observe(value);
    }

    /// Merge a pre-aggregated [`Histogram`] into a histogram series —
    /// for exporters that aggregate outside the registry and label the
    /// result at scrape time (e.g. per-tenant serving shards).
    pub fn merge_histogram(&mut self, name: &str, labels: &[(&str, &str)], h: &Histogram) {
        self.series_mut(name, labels)
            .hist
            .as_mut()
            .expect("merge_histogram on non-histogram family")
            .merge(h);
    }

    /// Current value of a counter series, if it exists.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let rendered = render_labels(labels);
        let fam = self.families.iter().find(|f| f.name == name)?;
        fam.series
            .iter()
            .find(|s| s.labels == rendered)
            .map(|s| s.counter)
    }

    /// Current value of a gauge series, if it exists.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let rendered = render_labels(labels);
        let fam = self.families.iter().find(|f| f.name == name)?;
        fam.series
            .iter()
            .find(|s| s.labels == rendered)
            .map(|s| s.gauge)
    }

    /// The unlabelled histogram of family `name`, if any samples structure
    /// exists (present as soon as the family has been observed once).
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        let fam = self.families.iter().find(|f| f.name == name)?;
        fam.series
            .iter()
            .find(|s| s.labels.is_empty())
            .and_then(|s| s.hist.as_deref())
    }

    /// Merge another registry's series into this one. Families are matched
    /// by name (definitions must agree); counters add, histograms merge,
    /// gauges take the other registry's value. `other`'s series order is
    /// preserved for series new to `self`, keeping output deterministic
    /// when merging per-device registries in device-index order.
    pub fn merge(&mut self, other: &Registry) {
        for of in &other.families {
            let fam = match self.families.iter_mut().find(|f| f.name == of.name) {
                Some(f) => f,
                None => {
                    self.families.push(of.clone());
                    continue;
                }
            };
            debug_assert_eq!(fam.kind, of.kind, "family {} kind mismatch", of.name);
            for os in &of.series {
                match fam.series.iter_mut().find(|s| s.labels == os.labels) {
                    Some(s) => {
                        s.counter += os.counter;
                        s.gauge = os.gauge;
                        if let (Some(h), Some(oh)) = (s.hist.as_mut(), os.hist.as_deref()) {
                            h.merge(oh);
                        }
                    }
                    None => fam.series.push(os.clone()),
                }
            }
        }
    }

    /// Render every family in Prometheus text-exposition format.
    pub fn prometheus(&self) -> String {
        self.render(false)
    }

    /// Render only the [`Clock::Model`] families — the subset guaranteed
    /// bit-identical for any `DYNBC_HOST_THREADS`.
    pub fn prometheus_deterministic(&self) -> String {
        self.render(true)
    }

    fn render(&self, deterministic_only: bool) -> String {
        let mut out = String::new();
        for fam in &self.families {
            if deterministic_only && fam.clock == Clock::Wall {
                continue;
            }
            let kind = match fam.kind {
                Kind::Counter => "counter",
                Kind::Gauge => "gauge",
                Kind::Histogram => "histogram",
            };
            let _ = writeln!(out, "# HELP {} {}", fam.name, fam.help);
            let _ = writeln!(out, "# TYPE {} {}", fam.name, kind);
            // Series render in sorted label order, not first-touch order:
            // exposition output is then independent of which thread (or
            // tenant) touched a family first.
            let mut series: Vec<&Series> = fam.series.iter().collect();
            series.sort_by(|a, b| a.labels.cmp(&b.labels));
            for s in series {
                match fam.kind {
                    Kind::Counter => {
                        let _ = writeln!(out, "{}{} {}", fam.name, s.labels, s.counter);
                    }
                    Kind::Gauge => {
                        let _ = writeln!(out, "{}{} {}", fam.name, s.labels, s.gauge);
                    }
                    Kind::Histogram => {
                        if let Some(h) = s.hist.as_deref() {
                            h.prometheus_lines_labelled(&fam.name, &s.labels, &mut out);
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let mut r = Registry::new();
        r.define_counter("ops_total", "Ops applied.", Clock::Model);
        r.define_gauge("util", "Device utilization.", Clock::Model);
        r.define_histogram("lat", "Latency.", Clock::Model);
        r.inc("ops_total", &[], 3);
        r.inc("ops_total", &[("case", "same")], 2);
        r.set_gauge("util", &[("device", "0")], 0.5);
        r.observe("lat", &[], 1.0);
        assert_eq!(r.counter_value("ops_total", &[]), Some(3));
        assert_eq!(r.counter_value("ops_total", &[("case", "same")]), Some(2));
        assert_eq!(r.gauge_value("util", &[("device", "0")]), Some(0.5));
        assert_eq!(r.histogram("lat").unwrap().count(), 1);
        let text = r.prometheus();
        assert!(text.contains("# TYPE ops_total counter"), "{text}");
        assert!(text.contains("ops_total{case=\"same\"} 2"), "{text}");
        assert!(text.contains("util{device=\"0\"} 0.5"), "{text}");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 1"), "{text}");
    }

    #[test]
    fn deterministic_rendering_skips_wall_families() {
        let mut r = Registry::new();
        r.define_histogram("model_lat", "Model latency.", Clock::Model);
        r.define_histogram("wall_lat", "Wall latency.", Clock::Wall);
        r.observe("model_lat", &[], 1.0);
        r.observe("wall_lat", &[], 0.123);
        let det = r.prometheus_deterministic();
        assert!(det.contains("model_lat"), "{det}");
        assert!(!det.contains("wall_lat"), "{det}");
        assert!(r.prometheus().contains("wall_lat"));
    }

    #[test]
    fn exposition_sorts_labels_regardless_of_touch_order() {
        // Two registries touch the same tenant series in opposite order —
        // e.g. under different DYNBC_HOST_THREADS the first commit may come
        // from a different shard — yet the exposition must be bit-identical.
        let mk = |tenants: &[&str]| {
            let mut r = Registry::new();
            r.define_counter("ops_total", "Ops.", Clock::Model);
            r.define_histogram("lat", "Latency.", Clock::Model);
            for (i, t) in tenants.iter().enumerate() {
                r.inc("ops_total", &[("tenant", t)], 1 + i as u64);
                r.observe("lat", &[("tenant", t)], 1.0);
            }
            r
        };
        let mut fwd = mk(&["a", "b"]);
        let mut rev = mk(&["b", "a"]);
        // Equalize the values (mk gives the first-touched tenant 1).
        fwd.inc("ops_total", &[("tenant", "a")], 2);
        fwd.inc("ops_total", &[("tenant", "b")], 1);
        rev.inc("ops_total", &[("tenant", "a")], 1);
        rev.inc("ops_total", &[("tenant", "b")], 2);
        assert_eq!(
            fwd.prometheus_deterministic(),
            rev.prometheus_deterministic()
        );
        let text = fwd.prometheus();
        let a = text.find("ops_total{tenant=\"a\"}").unwrap();
        let b = text.find("ops_total{tenant=\"b\"}").unwrap();
        assert!(a < b, "label sets must sort in exposition output:\n{text}");
    }

    #[test]
    fn labelled_histograms_render_with_labels() {
        let mut r = Registry::new();
        r.define_histogram("lat", "Latency.", Clock::Model);
        r.observe("lat", &[("tenant", "t0")], 1.0);
        r.observe("lat", &[("tenant", "t0")], 1.0);
        let text = r.prometheus();
        assert!(
            text.contains("lat_bucket{tenant=\"t0\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("lat_sum{tenant=\"t0\"} 2"), "{text}");
        assert!(text.contains("lat_count{tenant=\"t0\"} 2"), "{text}");
    }

    #[test]
    fn merge_adds_counters_and_histograms_in_device_order() {
        let mk = |n: u64| {
            let mut r = Registry::new();
            r.define_counter("c", "C.", Clock::Model);
            r.define_histogram("h", "H.", Clock::Model);
            r.inc("c", &[], n);
            r.observe("h", &[], n as f64);
            r
        };
        let mut a = mk(1);
        a.merge(&mk(2));
        assert_eq!(a.counter_value("c", &[]), Some(3));
        assert_eq!(a.histogram("h").unwrap().count(), 2);
    }
}
