//! Span-based tracing of the update lifecycle and a bounded JSON Lines
//! event log.
//!
//! Spans run on the *model* clock (the same simulated clock
//! `dynbc_prof::LaunchProfile`s use), so host pipeline stages and device
//! kernel spans line up on one timeline. Host phases that do no model work
//! (validate, plan, commit) carry a zero model duration and export as
//! instant events, with their wall-clock cost attached as an argument.

/// One span (or instant marker) on the update-lifecycle timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Phase name, e.g. `update`, `validate`, `stage#0`, `batch::fused::node#0`.
    pub name: String,
    /// Track within the host-pipeline process (`0` = main pipeline; the
    /// multi-GPU engine places per-device rows on tracks `1 + device`).
    pub track: u32,
    /// Nesting depth (0 = `update`, 1 = lifecycle phase, 2 = per-stage
    /// detail). Informational: Chrome/Perfetto nest by containment.
    pub depth: u32,
    /// Start time on the model clock, seconds.
    pub start_s: f64,
    /// Duration on the model clock, seconds. `0.0` marks an off-clock host
    /// phase, exported as an instant event.
    pub dur_s: f64,
    /// Wall-clock cost of the phase, seconds (not deterministic).
    pub wall_s: f64,
    /// Extra numeric arguments, exported verbatim into the trace event.
    pub args: Vec<(&'static str, f64)>,
}

impl Span {
    /// A span covering `[start_s, start_s + dur_s]` on the model clock.
    pub fn new(name: impl Into<String>, depth: u32, start_s: f64, dur_s: f64) -> Self {
        Span {
            name: name.into(),
            track: 0,
            depth,
            start_s,
            dur_s,
            wall_s: 0.0,
            args: Vec::new(),
        }
    }

    /// An off-clock host phase at `at_s` whose real cost was `wall_s`.
    pub fn instant(name: impl Into<String>, depth: u32, at_s: f64, wall_s: f64) -> Self {
        Span {
            name: name.into(),
            track: 0,
            depth,
            start_s: at_s,
            dur_s: 0.0,
            wall_s,
            args: Vec::new(),
        }
    }

    /// Attach the wall-clock cost.
    pub fn wall(mut self, wall_s: f64) -> Self {
        self.wall_s = wall_s;
        self
    }

    /// Place the span on a specific host track.
    pub fn on_track(mut self, track: u32) -> Self {
        self.track = track;
        self
    }

    /// Attach a numeric argument.
    pub fn arg(mut self, key: &'static str, value: f64) -> Self {
        self.args.push((key, value));
        self
    }
}

/// Append-only list of lifecycle spans, in emission order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    spans: Vec<Span>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a span.
    pub fn push(&mut self, span: Span) {
        self.spans.push(span);
    }

    /// All spans, in emission order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Append all spans from another trace (multi-GPU device-order merge).
    pub fn extend_from(&mut self, other: &Trace) {
        self.spans.extend_from_slice(&other.spans);
    }
}

/// Bounded ring buffer of JSON Lines event records.
///
/// Each record is one pre-rendered JSON object (no trailing newline). When
/// the buffer is full the oldest record is dropped and counted, so a
/// long-running service keeps a recent window at fixed memory cost.
#[derive(Debug, Clone, PartialEq)]
pub struct EventLog {
    records: std::collections::VecDeque<String>,
    capacity: usize,
    dropped: u64,
}

/// Default event-log capacity.
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

impl Default for EventLog {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_EVENT_CAPACITY)
    }
}

impl EventLog {
    /// An empty log holding at most `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        EventLog {
            records: std::collections::VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Append one pre-rendered JSON object, evicting the oldest record
    /// when full.
    pub fn push(&mut self, record: String) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }

    /// Records currently held, oldest first.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the retained window as JSON Lines (one object per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(r);
            out.push('\n');
        }
        out
    }

    /// Merge another log's records after this one's (device-order merge);
    /// the capacity bound still applies.
    pub fn extend_from(&mut self, other: &EventLog) {
        self.dropped += other.dropped;
        for r in &other.records {
            self.push(r.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_log_is_bounded_and_counts_drops() {
        let mut log = EventLog::with_capacity(2);
        log.push("{\"a\":1}".into());
        log.push("{\"a\":2}".into());
        log.push("{\"a\":3}".into());
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 1);
        assert_eq!(log.to_jsonl(), "{\"a\":2}\n{\"a\":3}\n");
    }

    #[test]
    fn span_builders_set_fields() {
        let s = Span::new("stage#0", 1, 2.0, 0.5)
            .wall(0.01)
            .on_track(3)
            .arg("ops", 4.0);
        assert_eq!(s.name, "stage#0");
        assert_eq!(s.track, 3);
        assert_eq!(s.dur_s, 0.5);
        assert_eq!(s.args, vec![("ops", 4.0)]);
        let i = Span::instant("validate", 1, 2.0, 0.001);
        assert_eq!(i.dur_s, 0.0);
        assert_eq!(i.wall_s, 0.001);
    }
}
