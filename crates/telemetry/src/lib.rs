//! `dynbc-telemetry`: update-lifecycle observability for the dynamic-BC
//! engines.
//!
//! The paper's headline measurements are *update pipeline* properties —
//! per-insertion latency distributions (Figure 2), the fraction of the
//! graph each insertion touches (Figure 1), and the Case 1/2/3 mix of the
//! Green et al. incremental algorithm. This crate provides the service
//! layer that records them:
//!
//! * a [`Registry`] of counters, gauges, and log-linear [`Histogram`]s
//!   with deterministic p50/p90/p99 queries;
//! * [`Span`]-based tracing of the update lifecycle
//!   (`update → validate → plan → stage[i] → launch → commit`) on the
//!   simulated clock, unified with `dynbc-prof` kernel profiles by
//!   [`unified_chrome_trace`] so host stages and device kernels share one
//!   Perfetto timeline;
//! * exporters: Prometheus text exposition ([`Telemetry::prometheus`]),
//!   a bounded JSON Lines [`EventLog`], and the Chrome trace.
//!
//! # Determinism contract
//!
//! Metric families are tagged with the [`Clock`] they derive from. `Model`
//! families (latency in simulated seconds, touched fractions, case
//! tallies, batch sizes) are reduced in deterministic order by the engines
//! and are bit-identical for any `DYNBC_HOST_THREADS`;
//! [`Telemetry::prometheus_deterministic`] renders exactly that subset.
//! `Wall` families measure real host time and vary run to run.
//!
//! Collection is gated by the engines behind `DYNBC_TELEMETRY=1` /
//! `set_telemetry(...)` following the racecheck/profiling template: a
//! single predictable branch per update when off, no allocation.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod hist;
mod registry;
mod trace;

use std::fmt::Write as _;

pub use dynbc_prof::{CacheCounters, ProfileReport};
pub use export::unified_chrome_trace;
pub use hist::Histogram;
pub use registry::{Clock, Registry};
pub use trace::{EventLog, Span, Trace, DEFAULT_EVENT_CAPACITY};

/// Family: update batches applied (counter).
pub const BATCHES_TOTAL: &str = "dynbc_batches_total";
/// Family: edge operations applied across all batches (counter).
pub const OPS_TOTAL: &str = "dynbc_ops_total";
/// Family: insertion/deletion case tallies, labelled `case="same|adjacent|distant"`.
pub const CASES_TOTAL: &str = "dynbc_cases_total";
/// Family: queue pushes observed during updates (counter; requires
/// profiling on the GPU engines, model queue ops on the CPU engine).
pub const QUEUE_OPS_TOTAL: &str = "dynbc_queue_ops_total";
/// Family: frontier dedup operations observed during updates (counter).
pub const DEDUP_OPS_TOTAL: &str = "dynbc_dedup_ops_total";
/// Family: per-batch update latency on the model clock (histogram).
pub const UPDATE_LATENCY_MODEL: &str = "dynbc_update_latency_model_seconds";
/// Family: per-batch update latency on the host wall clock (histogram).
pub const UPDATE_LATENCY_WALL: &str = "dynbc_update_latency_wall_seconds";
/// Family: operations per batch (histogram).
pub const BATCH_SIZE_OPS: &str = "dynbc_batch_size_ops";
/// Family: fraction of vertices touched per work-requiring (Case 2)
/// source scenario (histogram) — the paper's "typical scenarios touch a
/// tiny fraction of the graph" observation.
pub const TOUCHED_FRACTION: &str = "dynbc_touched_fraction";
/// Family: per-device share of the batch makespan, labelled `device="N"`
/// (gauge; populated by the multi-GPU engine).
pub const DEVICE_UTILIZATION: &str = "dynbc_device_utilization_ratio";
/// Family: hybrid-router stage routing decisions, labelled
/// `path="cpu|native"` (counter; populated by engines running the
/// `Backend::Hybrid` execution backend).
pub const ROUTER_DECISIONS_TOTAL: &str = "dynbc_router_decisions_total";
/// Family: wall-clock latency of stages the router sent down the
/// sequential CPU path (histogram, host wall clock).
pub const ROUTER_CPU_LATENCY_WALL: &str = "dynbc_router_cpu_latency_wall_seconds";
/// Family: wall-clock latency of stages executed by the parallel native
/// backend (histogram, host wall clock).
pub const ROUTER_NATIVE_LATENCY_WALL: &str = "dynbc_router_native_latency_wall_seconds";
/// Family: modeled L1 requests, labelled `outcome="hit|miss"` (counter;
/// requires `DYNBC_MEMSIM=1` on a GPU engine). Defined lazily on the
/// first observation carrying cache counters, so exposition output
/// without memsim stays byte-identical.
pub const MEMSIM_L1_TOTAL: &str = "dynbc_memsim_l1_requests_total";
/// Family: modeled L2 requests, labelled
/// `outcome="hit|miss|sector_fill"` (counter; a sector fill is a request
/// that hit the line's tag but had to fetch its 32 B sector).
pub const MEMSIM_L2_TOTAL: &str = "dynbc_memsim_l2_requests_total";
/// Family: modeled cache-line evictions, labelled `level="l1|l2"`
/// (counter).
pub const MEMSIM_EVICTIONS_TOTAL: &str = "dynbc_memsim_evictions_total";
/// Family: cumulative modeled L1 hit ratio (gauge; recomputed from the
/// accumulated counters after every batch).
pub const MEMSIM_L1_HIT_RATIO: &str = "dynbc_memsim_l1_hit_ratio";
/// Family: cumulative modeled L2 hit ratio (gauge; sector fills count as
/// misses — the line tag matched but DRAM was still touched).
pub const MEMSIM_L2_HIT_RATIO: &str = "dynbc_memsim_l2_hit_ratio";

/// Everything one engine batch contributes to the metrics registry.
///
/// Engines fill this from data they already reduced deterministically
/// (model seconds, case tallies, per-source touched counts) plus the wall
/// clock they already measure for `BatchResult`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UpdateObservation {
    /// Edge operations in the batch.
    pub ops: u64,
    /// Batch latency on the model clock, seconds.
    pub model_seconds: f64,
    /// Batch latency on the host wall clock, seconds.
    pub wall_seconds: f64,
    /// Case 1 (same-level) insertions/deletions in the batch.
    pub case_same: u64,
    /// Case 2 (adjacent-level) operations in the batch.
    pub case_adjacent: u64,
    /// Case 3 (distant-level) operations in the batch.
    pub case_distant: u64,
    /// Touched-vertex fraction (`touched / n`) of each work-requiring
    /// source scenario in the batch, in deterministic (op, source) order.
    pub touched_fractions: Vec<f64>,
    /// Queue pushes attributed to the batch (0 when not measured).
    pub queue_ops: u64,
    /// Dedup operations attributed to the batch (0 when not measured).
    pub dedup_ops: u64,
    /// Modeled cache-hierarchy counters attributed to the batch (empty
    /// unless the engine ran with `DYNBC_MEMSIM=1`).
    pub cache: CacheCounters,
}

/// Telemetry collector owned by one engine: metrics registry, lifecycle
/// trace, and bounded event log.
#[derive(Debug, Clone, PartialEq)]
pub struct Telemetry {
    registry: Registry,
    trace: Trace,
    events: EventLog,
    updates: u64,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// A collector with the standard `dynbc_*` family set defined (in
    /// fixed order, so exposition output is comparable across engines).
    pub fn new() -> Self {
        let mut r = Registry::new();
        r.define_counter(BATCHES_TOTAL, "Update batches applied.", Clock::Model);
        r.define_counter(
            OPS_TOTAL,
            "Edge operations applied across all batches.",
            Clock::Model,
        );
        r.define_counter(
            CASES_TOTAL,
            "Green et al. case tallies per operation x source.",
            Clock::Model,
        );
        r.define_counter(
            QUEUE_OPS_TOTAL,
            "Frontier queue pushes observed during updates.",
            Clock::Model,
        );
        r.define_counter(
            DEDUP_OPS_TOTAL,
            "Frontier dedup operations observed during updates.",
            Clock::Model,
        );
        r.define_histogram(
            UPDATE_LATENCY_MODEL,
            "Per-batch update latency on the simulated clock, seconds.",
            Clock::Model,
        );
        r.define_histogram(
            UPDATE_LATENCY_WALL,
            "Per-batch update latency on the host wall clock, seconds.",
            Clock::Wall,
        );
        r.define_histogram(BATCH_SIZE_OPS, "Edge operations per batch.", Clock::Model);
        r.define_histogram(
            TOUCHED_FRACTION,
            "Fraction of vertices touched per work-requiring source scenario.",
            Clock::Model,
        );
        r.define_gauge(
            DEVICE_UTILIZATION,
            "Per-device share of the batch makespan on the model clock.",
            Clock::Model,
        );
        r.define_counter(
            ROUTER_DECISIONS_TOTAL,
            "Hybrid-router stage routing decisions per execution path.",
            Clock::Model,
        );
        r.define_histogram(
            ROUTER_CPU_LATENCY_WALL,
            "Wall-clock latency of stages routed to the sequential CPU path, seconds.",
            Clock::Wall,
        );
        r.define_histogram(
            ROUTER_NATIVE_LATENCY_WALL,
            "Wall-clock latency of stages executed by the parallel native backend, seconds.",
            Clock::Wall,
        );
        Telemetry {
            registry: r,
            trace: Trace::new(),
            events: EventLog::default(),
            updates: 0,
        }
    }

    /// Record one batch: increments counters, feeds the histograms, and
    /// appends a JSON Lines event record.
    pub fn record_update(&mut self, obs: &UpdateObservation) {
        self.updates += 1;
        let r = &mut self.registry;
        r.inc(BATCHES_TOTAL, &[], 1);
        r.inc(OPS_TOTAL, &[], obs.ops);
        r.inc(CASES_TOTAL, &[("case", "same")], obs.case_same);
        r.inc(CASES_TOTAL, &[("case", "adjacent")], obs.case_adjacent);
        r.inc(CASES_TOTAL, &[("case", "distant")], obs.case_distant);
        r.inc(QUEUE_OPS_TOTAL, &[], obs.queue_ops);
        r.inc(DEDUP_OPS_TOTAL, &[], obs.dedup_ops);
        r.observe(UPDATE_LATENCY_MODEL, &[], obs.model_seconds);
        r.observe(UPDATE_LATENCY_WALL, &[], obs.wall_seconds);
        r.observe(BATCH_SIZE_OPS, &[], obs.ops as f64);
        let mut max_touched = 0.0f64;
        for &f in &obs.touched_fractions {
            r.observe(TOUCHED_FRACTION, &[], f);
            max_touched = max_touched.max(f);
        }
        if !obs.cache.is_empty() {
            self.record_cache(&obs.cache);
        }
        let mut rec = String::with_capacity(160);
        let _ = write!(
            rec,
            "{{\"event\": \"update\", \"seq\": {}, \"ops\": {}, \"model_seconds\": {}, \
             \"wall_seconds\": {}, \"case_same\": {}, \"case_adjacent\": {}, \
             \"case_distant\": {}, \"max_touched_fraction\": {}",
            self.updates,
            obs.ops,
            export::json_number(obs.model_seconds),
            export::json_number(obs.wall_seconds),
            obs.case_same,
            obs.case_adjacent,
            obs.case_distant,
            export::json_number(max_touched),
        );
        if !obs.cache.is_empty() {
            let _ = write!(
                rec,
                ", \"l1_hit_rate\": {}, \"l2_hit_rate\": {}",
                export::json_number(obs.cache.l1_hit_rate()),
                export::json_number(obs.cache.l2_hit_rate()),
            );
        }
        rec.push('}');
        self.events.push(rec);
    }

    /// Feeds one batch's cache counters into the `dynbc_memsim_*`
    /// families, defining them on first use (a collector that never sees
    /// memsim data exposes no memsim families at all). Ratio gauges are
    /// recomputed from the *accumulated* counters, so at scrape time they
    /// read as run-to-date hit rates, not last-batch rates.
    fn record_cache(&mut self, cache: &CacheCounters) {
        let r = &mut self.registry;
        if !r.is_defined(MEMSIM_L1_TOTAL) {
            r.define_counter(
                MEMSIM_L1_TOTAL,
                "Modeled L1 requests per outcome (dynbc-memsim).",
                Clock::Model,
            );
            r.define_counter(
                MEMSIM_L2_TOTAL,
                "Modeled shared-L2 requests per outcome (dynbc-memsim).",
                Clock::Model,
            );
            r.define_counter(
                MEMSIM_EVICTIONS_TOTAL,
                "Modeled cache-line evictions per hierarchy level (dynbc-memsim).",
                Clock::Model,
            );
            r.define_gauge(
                MEMSIM_L1_HIT_RATIO,
                "Cumulative modeled L1 hit ratio (dynbc-memsim).",
                Clock::Model,
            );
            r.define_gauge(
                MEMSIM_L2_HIT_RATIO,
                "Cumulative modeled L2 hit ratio; sector fills count as misses (dynbc-memsim).",
                Clock::Model,
            );
        }
        r.inc(MEMSIM_L1_TOTAL, &[("outcome", "hit")], cache.l1_hits);
        r.inc(MEMSIM_L1_TOTAL, &[("outcome", "miss")], cache.l1_misses);
        r.inc(MEMSIM_L2_TOTAL, &[("outcome", "hit")], cache.l2_hits);
        r.inc(MEMSIM_L2_TOTAL, &[("outcome", "miss")], cache.l2_misses);
        r.inc(
            MEMSIM_L2_TOTAL,
            &[("outcome", "sector_fill")],
            cache.l2_sector_fills,
        );
        r.inc(
            MEMSIM_EVICTIONS_TOTAL,
            &[("level", "l1")],
            cache.l1_evictions,
        );
        r.inc(
            MEMSIM_EVICTIONS_TOTAL,
            &[("level", "l2")],
            cache.l2_evictions,
        );
        let l1_hits = r
            .counter_value(MEMSIM_L1_TOTAL, &[("outcome", "hit")])
            .unwrap_or(0);
        let l1_misses = r
            .counter_value(MEMSIM_L1_TOTAL, &[("outcome", "miss")])
            .unwrap_or(0);
        if l1_hits + l1_misses > 0 {
            r.set_gauge(
                MEMSIM_L1_HIT_RATIO,
                &[],
                l1_hits as f64 / (l1_hits + l1_misses) as f64,
            );
        }
        let l2_hits = r
            .counter_value(MEMSIM_L2_TOTAL, &[("outcome", "hit")])
            .unwrap_or(0);
        let l2_other = r
            .counter_value(MEMSIM_L2_TOTAL, &[("outcome", "miss")])
            .unwrap_or(0)
            + r.counter_value(MEMSIM_L2_TOTAL, &[("outcome", "sector_fill")])
                .unwrap_or(0);
        if l2_hits + l2_other > 0 {
            r.set_gauge(
                MEMSIM_L2_HIT_RATIO,
                &[],
                l2_hits as f64 / (l2_hits + l2_other) as f64,
            );
        }
    }

    /// Record one hybrid-router stage decision and the wall-clock latency
    /// of the stage on the path it was routed to. `cpu` selects the
    /// sequential CPU path; otherwise the parallel native backend.
    pub fn record_router_stage(&mut self, cpu: bool, wall_seconds: f64) {
        let path = if cpu { "cpu" } else { "native" };
        self.registry
            .inc(ROUTER_DECISIONS_TOTAL, &[("path", path)], 1);
        let family = if cpu {
            ROUTER_CPU_LATENCY_WALL
        } else {
            ROUTER_NATIVE_LATENCY_WALL
        };
        self.registry.observe(family, &[], wall_seconds);
    }

    /// Set the utilization gauge for one device.
    pub fn set_device_utilization(&mut self, device: usize, ratio: f64) {
        self.registry.set_gauge(
            DEVICE_UTILIZATION,
            &[("device", &device.to_string())],
            ratio,
        );
    }

    /// Append a lifecycle span.
    pub fn push_span(&mut self, span: Span) {
        self.trace.push(span);
    }

    /// Batches recorded so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The lifecycle trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The bounded event log.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// The histogram of family `name` (unlabelled series), if observed.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.registry.histogram(name)
    }

    /// Prometheus text exposition of every family.
    pub fn prometheus(&self) -> String {
        self.registry.prometheus()
    }

    /// Prometheus text exposition of the [`Clock::Model`] families only —
    /// bit-identical for any `DYNBC_HOST_THREADS`.
    pub fn prometheus_deterministic(&self) -> String {
        self.registry.prometheus_deterministic()
    }

    /// The retained event window as JSON Lines.
    pub fn events_jsonl(&self) -> String {
        self.events.to_jsonl()
    }

    /// Unified Chrome/Perfetto trace: this collector's lifecycle spans
    /// plus each labelled device kernel profile, on one simulated-clock
    /// timeline. See [`unified_chrome_trace`].
    pub fn chrome_trace_json(&self, devices: &[(String, &ProfileReport)]) -> String {
        unified_chrome_trace(&self.trace, devices)
    }

    /// Fold another collector's metrics and events into this one, keeping
    /// deterministic ordering when called in device-index order.
    pub fn merge_from(&mut self, other: &Telemetry) {
        self.registry.merge(other.registry());
        self.trace.extend_from(other.trace());
        self.events.extend_from(other.events());
        self.updates += other.updates;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs() -> UpdateObservation {
        UpdateObservation {
            ops: 4,
            model_seconds: 0.25,
            wall_seconds: 0.001,
            case_same: 1,
            case_adjacent: 1,
            case_distant: 2,
            touched_fractions: vec![0.01, 0.02, 0.3, 0.04],
            queue_ops: 12,
            dedup_ops: 3,
            cache: CacheCounters::default(),
        }
    }

    #[test]
    fn record_update_feeds_every_family() {
        let mut t = Telemetry::new();
        t.record_update(&obs());
        let r = t.registry();
        assert_eq!(r.counter_value(BATCHES_TOTAL, &[]), Some(1));
        assert_eq!(r.counter_value(OPS_TOTAL, &[]), Some(4));
        assert_eq!(
            r.counter_value(CASES_TOTAL, &[("case", "distant")]),
            Some(2)
        );
        assert_eq!(r.counter_value(QUEUE_OPS_TOTAL, &[]), Some(12));
        assert_eq!(t.histogram(UPDATE_LATENCY_MODEL).unwrap().count(), 1);
        assert_eq!(t.histogram(TOUCHED_FRACTION).unwrap().count(), 4);
        assert_eq!(t.updates(), 1);
        // A cache-empty observation must leave no memsim trace anywhere:
        // the families are defined lazily so off-path output is unchanged.
        assert!(!r.is_defined(MEMSIM_L1_TOTAL));
        assert!(!t.prometheus().contains("dynbc_memsim"));
        let line = t.events_jsonl();
        assert!(line.contains("\"event\": \"update\""), "{line}");
        assert!(line.contains("\"max_touched_fraction\": 0.3"), "{line}");
        assert!(!line.contains("l1_hit_rate"), "{line}");
    }

    #[test]
    fn memsim_families_define_lazily_and_accumulate() {
        let cache = CacheCounters {
            l1_hits: 30,
            l1_misses: 10,
            l1_evictions: 2,
            l2_hits: 6,
            l2_misses: 3,
            l2_sector_fills: 1,
            l2_evictions: 1,
        };
        let mut t = Telemetry::new();
        t.record_update(&UpdateObservation { cache, ..obs() });
        let r = t.registry();
        assert_eq!(
            r.counter_value(MEMSIM_L1_TOTAL, &[("outcome", "hit")]),
            Some(30)
        );
        assert_eq!(
            r.counter_value(MEMSIM_L2_TOTAL, &[("outcome", "sector_fill")]),
            Some(1)
        );
        assert_eq!(
            r.counter_value(MEMSIM_EVICTIONS_TOTAL, &[("level", "l1")]),
            Some(2)
        );
        assert_eq!(r.gauge_value(MEMSIM_L1_HIT_RATIO, &[]), Some(0.75));
        assert_eq!(r.gauge_value(MEMSIM_L2_HIT_RATIO, &[]), Some(0.6));
        let line = t.events_jsonl();
        assert!(line.contains("\"l1_hit_rate\": 0.75"), "{line}");
        assert!(line.contains("\"l2_hit_rate\": 0.6"), "{line}");
        // A second batch doubles the counters; the ratio gauges are
        // cumulative, so they stay put.
        t.record_update(&UpdateObservation { cache, ..obs() });
        let r = t.registry();
        assert_eq!(
            r.counter_value(MEMSIM_L1_TOTAL, &[("outcome", "miss")]),
            Some(20)
        );
        assert_eq!(r.gauge_value(MEMSIM_L1_HIT_RATIO, &[]), Some(0.75));
    }

    #[test]
    fn prometheus_output_has_one_help_and_type_per_family() {
        let mut t = Telemetry::new();
        t.record_update(&UpdateObservation {
            cache: CacheCounters {
                l1_hits: 1,
                ..CacheCounters::default()
            },
            ..obs()
        });
        t.set_device_utilization(0, 1.0);
        t.record_router_stage(true, 1e-5);
        t.record_router_stage(false, 2e-4);
        let text = t.prometheus();
        for fam in [
            BATCHES_TOTAL,
            OPS_TOTAL,
            CASES_TOTAL,
            QUEUE_OPS_TOTAL,
            DEDUP_OPS_TOTAL,
            UPDATE_LATENCY_MODEL,
            UPDATE_LATENCY_WALL,
            BATCH_SIZE_OPS,
            TOUCHED_FRACTION,
            DEVICE_UTILIZATION,
            ROUTER_DECISIONS_TOTAL,
            ROUTER_CPU_LATENCY_WALL,
            ROUTER_NATIVE_LATENCY_WALL,
            MEMSIM_L1_TOTAL,
            MEMSIM_L2_TOTAL,
            MEMSIM_EVICTIONS_TOTAL,
            MEMSIM_L1_HIT_RATIO,
            MEMSIM_L2_HIT_RATIO,
        ] {
            assert_eq!(
                text.matches(&format!("# HELP {fam} ")).count(),
                1,
                "family {fam} in:\n{text}"
            );
            assert_eq!(
                text.matches(&format!("# TYPE {fam} ")).count(),
                1,
                "family {fam} in:\n{text}"
            );
        }
        assert!(text.contains(&format!("{DEVICE_UTILIZATION}{{device=\"0\"}} 1")));
        assert!(text.contains(&format!("{ROUTER_DECISIONS_TOTAL}{{path=\"cpu\"}} 1")));
        assert!(text.contains(&format!("{ROUTER_DECISIONS_TOTAL}{{path=\"native\"}} 1")));
    }

    #[test]
    fn deterministic_exposition_excludes_wall_latency() {
        let mut t = Telemetry::new();
        t.record_update(&obs());
        let det = t.prometheus_deterministic();
        assert!(det.contains(UPDATE_LATENCY_MODEL), "{det}");
        assert!(!det.contains(UPDATE_LATENCY_WALL), "{det}");
    }

    #[test]
    fn merge_from_accumulates_in_order() {
        let mut a = Telemetry::new();
        let mut b = Telemetry::new();
        a.record_update(&obs());
        b.record_update(&obs());
        a.merge_from(&b);
        assert_eq!(a.updates(), 2);
        assert_eq!(a.registry().counter_value(OPS_TOTAL, &[]), Some(8));
        assert_eq!(a.histogram(TOUCHED_FRACTION).unwrap().count(), 8);
    }
}
