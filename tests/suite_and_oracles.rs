//! Integration checks of the reconstructed benchmark suite and the
//! cross-validation oracles.

use dynbc::bc::accuracy::{max_rel_diff, spearman_rank_correlation};
use dynbc::bc::reference::naive_bc_sources;
use dynbc::graph::algo::{connected_components, degree_stats, pseudo_diameter};
use dynbc::graph::suite::{benchmark_suite, TABLE_I};
use dynbc::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn suite_families_have_their_signature_shapes() {
    let suite = benchmark_suite(0.08, 5);
    let by_name: std::collections::HashMap<&str, &EdgeList> =
        suite.iter().map(|(n, g)| (*n, g)).collect();

    // Mesh: bounded degree, sqrt-ish diameter.
    let del = Csr::from_edge_list(by_name["del"]);
    assert!(degree_stats(&del).max <= 8);
    let d = pseudo_diameter(&del, 0, 3);
    assert!(
        d as f64 > (del.vertex_count() as f64).sqrt() * 0.5,
        "mesh diameter {d}"
    );

    // Small world: tiny diameter, tight degree spread.
    let small = Csr::from_edge_list(by_name["small"]);
    assert!(pseudo_diameter(&small, 0, 3) < 12);

    // Skewed families: heavy hubs. (The web crawl's skew is partly a
    // large-scale phenomenon — per-site hubs grow with site size — so its
    // bar is lower at this test scale.)
    for (name, factor) in [("pref", 8.0), ("kron", 8.0), ("caida", 8.0), ("eu", 4.0)] {
        let g = Csr::from_edge_list(by_name[name]);
        let s = degree_stats(&g);
        assert!(
            s.max as f64 > factor * s.median.max(1) as f64,
            "{name}: max degree {} vs median {}",
            s.max,
            s.median
        );
    }

    // Collaboration graph: densest of the suite.
    let copap = Csr::from_edge_list(by_name["coPap"]);
    let dense = degree_stats(&copap).mean;
    for (name, g) in &suite {
        if *name != "coPap" {
            assert!(
                dense > degree_stats(&Csr::from_edge_list(g)).mean,
                "coPap should be densest, {name} is denser"
            );
        }
    }

    // Every graph is dominated by one giant component among its
    // *non-isolated* vertices (Kronecker generators leave isolated
    // vertices by construction — the published kron_g500 instances do
    // too).
    for (name, g) in &suite {
        let csr = Csr::from_edge_list(g);
        let cc = connected_components(&csr);
        let active = g.vertex_count() - degree_stats(&csr).isolated;
        assert!(
            cc.giant_size() as f64 > 0.9 * active as f64,
            "{name}: giant component only {}/{active} non-isolated",
            cc.giant_size()
        );
    }
}

#[test]
fn brandes_agrees_with_definition_oracle_on_every_family() {
    for entry in &TABLE_I {
        let el = entry.generate(0.004, 12345); // ~64-100 vertices
        let csr = Csr::from_edge_list(&el);
        let sources: Vec<u32> = (0..csr.vertex_count() as u32).step_by(7).collect();
        let fast = dynbc::bc::brandes::brandes_approx(&csr, &sources);
        let slow = naive_bc_sources(&csr, &sources);
        assert!(
            max_rel_diff(&fast, &slow) < 1e-9,
            "{}: Brandes disagrees with the definition",
            entry.short
        );
    }
}

#[test]
fn approximate_bc_preserves_top_rankings() {
    // Brandes & Pich: k-source approximation preserves rankings well. We
    // check rank correlation between exact and k-source BC.
    let mut rng = StdRng::seed_from_u64(3);
    let el = dynbc::graph::gen::ba(&mut rng, 400, 4);
    let csr = Csr::from_edge_list(&el);
    let exact = dynbc::bc::brandes::brandes_exact(&csr);
    let sources = sample_sources(&mut rng, 400, 96);
    let approx = dynbc::bc::brandes::brandes_approx(&csr, &sources);
    let rho = spearman_rank_correlation(&exact, &approx);
    // BA graphs have a large plateau of near-zero leaf scores whose
    // relative order is noise; 0.85 is a strong global agreement here.
    assert!(rho > 0.85, "rank correlation {rho} too low for k=96/400");
}

#[test]
fn metis_round_trip_preserves_suite_graphs() {
    let el = TABLE_I[5].generate(0.01, 777); // pref at tiny scale
    let mut buf = Vec::new();
    dynbc::graph::io::write_metis(&el, &mut buf).unwrap();
    let back = dynbc::graph::io::read_metis(&buf[..]).unwrap();
    assert_eq!(back, el);
}

#[test]
fn dynamic_engine_works_on_every_suite_family() {
    for entry in &TABLE_I {
        let mut el = entry.generate(0.004, 4242);
        // Remove 3 edges, rebuild via the engine, verify.
        let removed: Vec<(u32, u32)> = el.edges().iter().copied().take(3).collect();
        el.remove_edges(&removed);
        let mut rng = StdRng::seed_from_u64(5);
        let sources = sample_sources(&mut rng, el.vertex_count(), 4);
        let mut engine = CpuDynamicBc::new(&el, &sources);
        for (u, v) in removed {
            engine.insert_edge(u, v);
        }
        let fresh = dynbc::bc::brandes::brandes_state(&engine.graph().to_csr(), &sources);
        assert!(
            max_rel_diff(&engine.state().bc, &fresh.bc) < 1e-9,
            "{}: dynamic BC diverged",
            entry.short
        );
    }
}
