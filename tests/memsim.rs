//! End-to-end tests of dynbc-memsim through the dynamic-BC engines: the
//! observability-only contract (BC bits and simulated seconds identical
//! with the model on or off), per-buffer attribution, the node- vs
//! edge-parallel locality contrast, the `DYNBC_MEMSIM` knob, the
//! multi-GPU merge, and bit-determinism under host-parallel execution.

use dynbc::gpusim::{DeviceConfig, ProfileReport, MEMSIM_ENV};
use dynbc::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Drives a fixed mixed insert/delete stream through an engine and
/// returns its profile report, final BC scores, and simulated seconds.
fn stream(par: Parallelism, threads: usize, memsim: bool) -> (ProfileReport, Vec<f64>, f64) {
    let mut rng = StdRng::seed_from_u64(42);
    let el = dynbc::graph::gen::ws(&mut rng, 150, 3, 0.2);
    let sources = sample_sources(&mut rng, 150, 8);
    let mut eng = GpuDynamicBc::new(&el, &sources, DeviceConfig::test_tiny(), par);
    eng.set_profiling(true);
    eng.set_memsim(memsim);
    eng.set_host_threads(threads);
    let mut done = 0;
    let mut rng = StdRng::seed_from_u64(7);
    while done < 12 {
        let a = rng.gen_range(0..150u32);
        let b = rng.gen_range(0..150u32);
        if a == b {
            continue;
        }
        if eng.graph().has_edge(a, b) {
            eng.remove_edge(a, b);
        } else {
            eng.insert_edge(a, b);
        }
        done += 1;
    }
    let seconds = eng.elapsed_seconds();
    let bc = eng.state_snapshot().bc;
    (eng.take_profile_report(), bc, seconds)
}

#[test]
fn memsim_changes_no_bc_bit_and_no_simulated_second() {
    let (on_report, on_bc, on_s) = stream(Parallelism::Node, 1, true);
    let (off_report, off_bc, off_s) = stream(Parallelism::Node, 1, false);
    // Observability-only: the cache model never feeds the cost model.
    assert_eq!(on_bc, off_bc, "BC scores must be bit-identical");
    assert_eq!(on_s, off_s, "simulated clock must be unchanged");
    assert!(!on_report.total().cache.is_empty());
    assert!(off_report.total().cache.is_empty());
    // Same profiles modulo the cache fields: every launch's non-cache
    // counters agree.
    assert_eq!(on_report.launches.len(), off_report.launches.len());
    for (a, b) in on_report.launches.iter().zip(&off_report.launches) {
        assert_eq!(a.kernel, b.kernel);
        assert_eq!(a.seconds, b.seconds);
        assert_eq!(a.total.mem_transactions, b.total.mem_transactions);
        assert_eq!(a.total.edges_scanned, b.total.edges_scanned);
    }
    // And memsim-off serialization carries no cache keys at all.
    let json = off_report.to_json();
    assert!(!json.contains("\"cache\""), "{json}");
    assert!(!json.contains("buffer_misses"), "{json}");
}

#[test]
fn engine_memsim_attributes_misses_to_named_buffers_and_stages() {
    let (report, _, _) = stream(Parallelism::Node, 1, true);
    let total = report.total().cache;
    assert_eq!(
        total.l1_requests(),
        report.total().mem_transactions,
        "L1 sees exactly the charged transactions"
    );
    let buffers = report.buffer_totals();
    assert!(!buffers.is_empty());
    let names: Vec<&str> = buffers.iter().map(|(n, _)| n.as_str()).collect();
    assert!(
        names.iter().any(|n| n.contains("sigma")),
        "path-count buffers should appear in the hot set: {names:?}"
    );
    let attributed: u64 = buffers.iter().map(|(_, m)| m).sum();
    assert_eq!(attributed, total.l1_misses, "every miss is attributed");
    // Stage cache counters sum to the total.
    let stage_l1: u64 = report
        .stage_totals()
        .iter()
        .map(|(_, c)| c.cache.l1_requests())
        .sum();
    assert_eq!(stage_l1, total.l1_requests());
}

#[test]
fn node_parallel_l1_hit_rate_beats_edge_parallel() {
    let (node, _, _) = stream(Parallelism::Node, 1, true);
    let (edge, _, _) = stream(Parallelism::Edge, 1, true);
    let node_l1 = node.total().cache.l1_hit_rate();
    let edge_l1 = edge.total().cache.l1_hit_rate();
    // The paper's locality story in cache terms: edge-parallel streams
    // the whole arc list through the hierarchy every BFS level, while
    // node-parallel revisits the frontier's compact adjacency.
    assert!(
        node_l1 > edge_l1,
        "node L1 hit rate {node_l1:.4} must beat edge {edge_l1:.4}"
    );
}

#[test]
fn engine_memsim_is_bit_identical_across_host_threads() {
    let (baseline, bc1, _) = stream(Parallelism::Node, 1, true);
    for threads in [2usize, 8] {
        let (got, bc, _) = stream(Parallelism::Node, threads, true);
        assert_eq!(
            baseline, got,
            "memsim engine report differs at {threads} host threads"
        );
        assert_eq!(bc1, bc);
    }
    assert_eq!(
        baseline.to_json(),
        stream(Parallelism::Node, 8, true).0.to_json()
    );
}

/// A short stream through the multi-GPU engine with memsim on.
fn multi_stream(threads: usize) -> ProfileReport {
    let mut rng = StdRng::seed_from_u64(3);
    let el = dynbc::graph::gen::ba(&mut rng, 100, 3);
    let sources = sample_sources(&mut rng, 100, 9);
    let mut multi = MultiGpuDynamicBc::new(
        &el,
        &sources,
        DeviceConfig::test_tiny(),
        Parallelism::Node,
        3,
    );
    multi.set_profiling(true);
    multi.set_memsim(true);
    multi.set_host_threads(threads);
    multi.insert_edge(0, 99);
    multi.insert_edge(17, 61);
    multi.remove_edge(0, 99);
    multi.profile_report()
}

#[test]
fn multi_gpu_memsim_merges_per_device_l2s_deterministically() {
    let baseline = multi_stream(1);
    assert!(!baseline.total().cache.is_empty());
    assert!(!baseline.buffer_totals().is_empty());
    // Each device models its own L2, merged in device-index order: the
    // merged report is bit-identical for any host-thread count.
    for threads in [2usize, 8] {
        assert_eq!(
            baseline,
            multi_stream(threads),
            "multi-GPU memsim report differs at {threads} host threads"
        );
    }
}

#[test]
fn memsim_env_knob_enables_collection_and_implies_profiling() {
    let el = EdgeList::from_pairs(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
    std::env::set_var(MEMSIM_ENV, "1");
    let mut eng = GpuDynamicBc::new(&el, &[0, 3], DeviceConfig::test_tiny(), Parallelism::Node);
    std::env::remove_var(MEMSIM_ENV);
    assert!(eng.memsim());
    // Profiling was never switched on, yet memsim launches still record
    // profiles (cache counters ride in LaunchProfile).
    eng.insert_edge(0, 5);
    let report = eng.profile_report();
    assert!(!report.launches.is_empty());
    assert!(!report.total().cache.is_empty());
}
