//! Property tests: any engine, any graph family, any insertion stream —
//! the incrementally-maintained state must equal a from-scratch Brandes
//! run after every step.

use dynbc::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a random graph from a randomly chosen family.
fn family_graph(family: u8, n: usize, seed: u64) -> EdgeList {
    let mut rng = StdRng::seed_from_u64(seed);
    match family % 5 {
        0 => dynbc::graph::gen::er(&mut rng, n, n * 3 / 2),
        1 => dynbc::graph::gen::ba(&mut rng, n, 3),
        2 => dynbc::graph::gen::ws(&mut rng, n, 2, 0.2),
        3 => dynbc::graph::gen::geometric(&mut rng, n, 0.1),
        // Sparse ER: lots of small components → merge-heavy streams.
        _ => dynbc::graph::gen::er(&mut rng, n, n / 3),
    }
}

fn random_stream(el: &EdgeList, count: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = el.vertex_count() as u32;
    let mut graph = el.clone();
    let mut out = Vec::with_capacity(count);
    let mut guard = 0;
    while out.len() < count && guard < 10_000 {
        guard += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v && graph.insert_edge(u, v) {
            out.push((u, v));
        }
    }
    out
}

fn assert_state_matches(state: &BcState, graph: &DynGraph, ctx: &str) {
    let csr = graph.to_csr();
    let fresh = dynbc::bc::brandes::brandes_state(&csr, &state.sources);
    for i in 0..state.sources.len() {
        prop_assert_eq_stub(&state.d[i], &fresh.d[i], ctx, "d");
        for v in 0..state.n {
            assert!(
                (state.sigma[i][v] - fresh.sigma[i][v]).abs() < 1e-6,
                "{ctx}: sigma[{i}][{v}]"
            );
            assert!(
                (state.delta[i][v] - fresh.delta[i][v]).abs() < 1e-6,
                "{ctx}: delta[{i}][{v}]: {} vs {}",
                state.delta[i][v],
                fresh.delta[i][v]
            );
        }
    }
    for v in 0..state.n {
        assert!(
            (state.bc[v] - fresh.bc[v]).abs() < 1e-6,
            "{ctx}: bc[{v}]: {} vs {}",
            state.bc[v],
            fresh.bc[v]
        );
    }
}

fn prop_assert_eq_stub(a: &[u32], b: &[u32], ctx: &str, what: &str) {
    assert_eq!(a, b, "{ctx}: {what} mismatch");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cpu_engine_tracks_brandes(
        family in 0u8..5,
        n in 12usize..40,
        k in 1usize..6,
        seed in 0u64..1_000_000,
    ) {
        let el = family_graph(family, n, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let sources = sample_sources(&mut rng, el.vertex_count(), k);
        let stream = random_stream(&el, 6, seed ^ 0xF00D);
        let mut engine = CpuDynamicBc::new(&el, &sources);
        for (step, &(u, v)) in stream.iter().enumerate() {
            engine.insert_edge(u, v);
            assert_state_matches(
                engine.state(),
                engine.graph(),
                &format!("cpu family={family} seed={seed} step={step}"),
            );
        }
    }

    #[test]
    fn gpu_engines_track_brandes(
        family in 0u8..5,
        n in 12usize..32,
        seed in 0u64..1_000_000,
        edge_par in proptest::bool::ANY,
    ) {
        let el = family_graph(family, n, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1111);
        let sources = sample_sources(&mut rng, el.vertex_count(), 4);
        let stream = random_stream(&el, 4, seed ^ 0x2222);
        let par = if edge_par { Parallelism::Edge } else { Parallelism::Node };
        let mut engine = GpuDynamicBc::new(&el, &sources, DeviceConfig::test_tiny(), par);
        for &(u, v) in &stream {
            engine.insert_edge(u, v);
        }
        let snapshot = engine.state_snapshot();
        assert_state_matches(
            &snapshot,
            engine.graph(),
            &format!("gpu-{par} family={family} n={n} seed={seed}"),
        );
    }

    #[test]
    fn cpu_and_gpu_agree_on_everything(
        family in 0u8..5,
        n in 12usize..28,
        seed in 0u64..1_000_000,
    ) {
        let el = family_graph(family, n, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x3333);
        let sources = sample_sources(&mut rng, el.vertex_count(), 4);
        let stream = random_stream(&el, 5, seed ^ 0x4444);
        let mut cpu = CpuDynamicBc::new(&el, &sources);
        let mut gpu = GpuDynamicBc::new(&el, &sources, DeviceConfig::test_tiny(), Parallelism::Node);
        for &(u, v) in &stream {
            let rc = cpu.insert_edge(u, v);
            let rg = gpu.insert_edge(u, v);
            prop_assert_eq!(rc.cases, rg.cases, "case tallies differ on ({},{})", u, v);
            // The touched sets are defined identically on both engines.
            for (oc, og) in rc.per_source.iter().zip(&rg.per_source) {
                prop_assert_eq!(oc.case, og.case);
                prop_assert_eq!(oc.touched, og.touched, "touched differs on ({},{})", u, v);
            }
        }
        let gs = gpu.state_snapshot();
        for v in 0..el.vertex_count() {
            prop_assert!((cpu.state().bc[v] - gs.bc[v]).abs() < 1e-6);
        }
    }
}
