//! End-to-end tests of the telemetry subsystem through the dynamic-BC
//! engines: the determinism contract (model-clock metric families are
//! bit-identical for any `DYNBC_HOST_THREADS`), disabled-mode no-op
//! behaviour, the `DYNBC_TELEMETRY` environment knob, span tracing over
//! the batched update lifecycle, and the Prometheus exposition shape.

use dynbc::gpusim::{DeviceConfig, TELEMETRY_ENV};
use dynbc::prelude::*;
use dynbc::telemetry::{
    Telemetry, CASES_TOTAL, TOUCHED_FRACTION, UPDATE_LATENCY_MODEL, UPDATE_LATENCY_WALL,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// Serializes the env-knob test against the tests that assert telemetry
/// is *off* by default (`std::env` is process-global).
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// The fixed workload every test drives: a small-world graph, 8 sources,
/// and 12 mixed insert/delete ops (same stream as `tests/profiling.rs`).
fn workload() -> (EdgeList, Vec<VertexId>) {
    let mut rng = StdRng::seed_from_u64(42);
    let el = dynbc::graph::gen::ws(&mut rng, 150, 3, 0.2);
    let sources = sample_sources(&mut rng, 150, 8);
    (el, sources)
}

/// Applies the fixed mixed stream via a per-op callback (engines don't
/// share a trait; they share this closure protocol — the callback checks
/// its own graph and inserts or removes accordingly).
fn drive(mut apply: impl FnMut(u32, u32)) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut done = 0;
    while done < 12 {
        let a = rng.gen_range(0..150u32);
        let b = rng.gen_range(0..150u32);
        if a == b {
            continue;
        }
        apply(a, b);
        done += 1;
    }
}

/// Runs the stream through a telemetry-enabled GPU engine and returns the
/// final report.
fn gpu_telemetry(par: Parallelism, threads: usize) -> Telemetry {
    let (el, sources) = workload();
    let mut eng = GpuDynamicBc::new(&el, &sources, DeviceConfig::test_tiny(), par)
        .with_telemetry(true)
        .with_host_threads(threads);
    drive(|a, b| {
        if eng.graph().has_edge(a, b) {
            eng.remove_edge(a, b);
        } else {
            eng.insert_edge(a, b);
        }
    });
    eng.take_telemetry_report().expect("telemetry enabled")
}

/// Runs the stream through a telemetry-enabled multi-GPU engine.
fn multi_telemetry(threads: usize) -> Telemetry {
    let (el, sources) = workload();
    let mut eng = MultiGpuDynamicBc::new(
        &el,
        &sources,
        DeviceConfig::test_tiny(),
        Parallelism::Node,
        3,
    )
    .with_telemetry(true);
    eng.set_host_threads(threads);
    drive(|a, b| {
        if eng.graph().has_edge(a, b) {
            eng.remove_edge(a, b);
        } else {
            eng.insert_edge(a, b);
        }
    });
    eng.take_telemetry_report().expect("telemetry enabled")
}

#[test]
fn gpu_metrics_are_bit_identical_across_host_threads() {
    for par in [Parallelism::Node, Parallelism::Edge] {
        let baseline = gpu_telemetry(par, 1);
        let base_text = baseline.prometheus_deterministic();
        assert!(base_text.contains(UPDATE_LATENCY_MODEL), "{base_text}");
        for threads in [2usize, 8] {
            let got = gpu_telemetry(par, threads);
            assert_eq!(
                base_text,
                got.prometheus_deterministic(),
                "{par}: deterministic exposition differs at {threads} host threads"
            );
            // The headline quantiles, bit for bit.
            for name in [UPDATE_LATENCY_MODEL, TOUCHED_FRACTION] {
                let (b, g) = (
                    baseline.histogram(name).unwrap(),
                    got.histogram(name).unwrap(),
                );
                for q in [0.5, 0.9, 0.99] {
                    assert_eq!(
                        b.quantile(q).to_bits(),
                        g.quantile(q).to_bits(),
                        "{par}: {name} q{q} differs at {threads} host threads"
                    );
                }
            }
        }
    }
}

#[test]
fn multi_gpu_metrics_are_bit_identical_across_host_threads() {
    let baseline = multi_telemetry(1).prometheus_deterministic();
    assert!(
        baseline.contains("dynbc_device_utilization_ratio"),
        "{baseline}"
    );
    for threads in [2usize, 8] {
        assert_eq!(
            baseline,
            multi_telemetry(threads).prometheus_deterministic(),
            "multi-GPU deterministic exposition differs at {threads} host threads"
        );
    }
}

#[test]
fn cpu_and_gpu_agree_on_model_clock_families() {
    let (el, sources) = workload();
    let mut cpu = CpuDynamicBc::new(&el, &sources).with_telemetry(true);
    drive(|a, b| {
        if cpu.graph().has_edge(a, b) {
            cpu.remove_edge(a, b);
        } else {
            cpu.insert_edge(a, b);
        }
    });
    let cpu_tel = cpu.take_telemetry_report().unwrap();
    let gpu_tel = gpu_telemetry(Parallelism::Node, 1);
    // Case tallies and touched fractions derive from the shared update
    // semantics, so CPU and GPU must agree sample for sample; latency
    // histograms differ (different machine models).
    for labels in [("case", "same"), ("case", "adjacent"), ("case", "distant")] {
        assert_eq!(
            cpu_tel.registry().counter_value(CASES_TOTAL, &[labels]),
            gpu_tel.registry().counter_value(CASES_TOTAL, &[labels]),
            "case tally {labels:?} differs between CPU and GPU engines"
        );
    }
    assert_eq!(
        cpu_tel.histogram(TOUCHED_FRACTION),
        gpu_tel.histogram(TOUCHED_FRACTION)
    );
}

#[test]
fn disabled_mode_is_a_no_op() {
    let _guard = ENV_LOCK.lock().unwrap();
    let (el, sources) = workload();
    let mut plain = GpuDynamicBc::new(&el, &sources, DeviceConfig::test_tiny(), Parallelism::Node);
    let mut telem = GpuDynamicBc::new(&el, &sources, DeviceConfig::test_tiny(), Parallelism::Node)
        .with_telemetry(true);
    assert!(plain.telemetry_report().is_none());
    assert!(!plain.telemetry());
    // Telemetry never changes what an engine computes: identical modeled
    // time and identical BC, bit for bit, with it on or off.
    let a = plain.insert_edge(3, 117);
    let b = telem.insert_edge(3, 117);
    assert_eq!(a.model_seconds.to_bits(), b.model_seconds.to_bits());
    for (x, y) in plain
        .state_snapshot()
        .bc
        .iter()
        .zip(&telem.state_snapshot().bc)
    {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    // Turning it off again drops the report and the span log.
    telem.set_telemetry(false);
    assert!(telem.telemetry_report().is_none());
    assert!(plain.take_telemetry_report().is_none());
}

#[test]
fn telemetry_env_knob_enables_collection() {
    let _guard = ENV_LOCK.lock().unwrap();
    let el = EdgeList::from_pairs(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
    std::env::set_var(TELEMETRY_ENV, "1");
    let mut eng = GpuDynamicBc::new(&el, &[0, 3], DeviceConfig::test_tiny(), Parallelism::Node);
    std::env::remove_var(TELEMETRY_ENV);
    assert!(eng.telemetry());
    eng.insert_edge(0, 5);
    let tel = eng.telemetry_report().unwrap();
    assert_eq!(tel.updates(), 1);
    let text = tel.prometheus();
    for family in [
        "dynbc_batches_total",
        UPDATE_LATENCY_MODEL,
        UPDATE_LATENCY_WALL,
        TOUCHED_FRACTION,
    ] {
        assert!(text.contains(family), "missing {family} in:\n{text}");
    }
    assert!(text.contains("le=\"+Inf\""), "{text}");
}

#[test]
fn spans_cover_the_update_lifecycle_and_export_to_chrome_trace() {
    let tel = gpu_telemetry(Parallelism::Node, 1);
    let spans = tel.trace().spans();
    assert!(!spans.is_empty());
    let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
    assert!(names.contains(&"update"), "{names:?}");
    assert!(names.contains(&"validate"), "{names:?}");
    assert!(names.iter().any(|n| n.starts_with("stage#")), "{names:?}");
    assert!(names.contains(&"plan"), "{names:?}");
    assert!(names.contains(&"commit"), "{names:?}");
    // Kernel launches ride along at depth 2 between plan and commit.
    assert!(names.iter().any(|n| n.starts_with("batch::")), "{names:?}");
    let json = tel.chrome_trace_json(&[]);
    assert!(json.contains("\"traceEvents\""), "{json}");
    assert!(json.contains("\"ph\": \"X\""), "{json}");
    // Events are valid JSON shape-wise: balanced braces/brackets.
    let depth = json.chars().fold(0i64, |d, c| match c {
        '{' | '[' => d + 1,
        '}' | ']' => d - 1,
        _ => d,
    });
    assert_eq!(depth, 0, "unbalanced chrome trace JSON");
}

#[test]
fn jsonl_event_log_records_one_event_per_update() {
    let tel = gpu_telemetry(Parallelism::Node, 1);
    assert_eq!(tel.updates(), 12);
    let log = tel.events_jsonl();
    assert_eq!(log.lines().count(), 12, "{log}");
    for line in log.lines() {
        assert!(line.starts_with("{\"event\": \"update\""), "{line}");
        assert!(line.ends_with('}'), "{line}");
    }
}
