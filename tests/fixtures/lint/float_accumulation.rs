// Lint fixture: f64 reduction outside the bc_delta slab pattern. Linted
// under the virtual path crates/bc/src/gpu/kernels/fixture.rs by
// tests/lint.rs.
pub fn reduce(vals: &[f64]) -> f64 {
    let mut acc = 0.0;
    for v in vals {
        acc += v;
    }
    acc
}
