// Lint fixture: wall-clock read in a model path. Linted under the
// virtual path crates/bc/src/dynamic/fixture.rs by tests/lint.rs.
pub fn model_update() -> u64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos() as u64
}
