// Lint fixture: unsafe without an adjacent SAFETY comment. Linted under
// the virtual path crates/gpu-sim/src/fixture.rs by tests/lint.rs.
pub fn peek(xs: &[u32]) -> u32 {
    // a comment that is not the required one
    unsafe { *xs.as_ptr() }
}
