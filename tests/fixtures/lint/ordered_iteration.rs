// Lint fixture: HashMap iteration in a commit path. Linted under the
// virtual path crates/bc/src/native/fixture.rs by tests/lint.rs; the
// fixtures directory itself is never scanned by the workspace lint.
use std::collections::HashMap;

pub fn commit(out: &mut Vec<f64>) {
    let mut staged = HashMap::new();
    staged.insert(1u32, 2i64);
    for (k, v) in staged.iter() {
        out.push(f64::from(*k) + *v as f64);
    }
}
