// Lint fixture: raw DYNBC_* knob name in an env read. Linted under the
// virtual path src/fixture.rs by tests/lint.rs.
pub fn read_knob() -> Option<String> {
    std::env::var("DYNBC_FAKE_KNOB").ok()
}
