// Lint fixture: the same float reduction as float_accumulation.rs, made
// clean by a reasoned allow annotation. Linted under the virtual path
// crates/bc/src/gpu/kernels/fixture.rs by tests/lint.rs.
pub fn reduce(vals: &[f64]) -> f64 {
    let mut acc = 0.0;
    for v in vals {
        // dynbc-lint: allow(float-accumulation) — fixture accumulator is
        // sequential over a fixed slice order
        acc += v;
    }
    acc
}
