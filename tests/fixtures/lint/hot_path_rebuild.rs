// Lint fixture: full CSR rebuilds on the batch-update hot path.
// Linted under the virtual path crates/bc/src/gpu/engine.rs by
// tests/lint.rs.
use dynbc_graph::{Csr, DynGraph, EdgeList};

pub fn apply_op(graph: &DynGraph, el: &EdgeList) -> Csr {
    let snapshot = graph.to_csr();
    let rebuilt = Csr::from_edge_list(el);
    drop(rebuilt);
    snapshot
}
