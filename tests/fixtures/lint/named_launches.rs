// Lint fixture: anonymous launch and unnamed GpuBuffer in kernel code.
// Linted under the virtual path crates/bc/src/gpu/fixture.rs by
// tests/lint.rs.
use dynbc_gpusim::{Gpu, GpuBuffer};

pub fn run(gpu: &mut Gpu) {
    let buf: GpuBuffer<u32> = GpuBuffer::new(4, 0);
    gpu.launch(1, |_, _| {});
    drop(buf);
}
