//! End-to-end tests of the profiling subsystem through the dynamic-BC
//! engines: per-stage attribution, the paper's futile-work contrast
//! between decompositions, the `DYNBC_PROFILE` environment knob, the
//! multi-GPU merge, and determinism of full-engine profiles under
//! host-parallel block execution.

use dynbc::gpusim::{DeviceConfig, ProfileReport, PROFILE_ENV};
use dynbc::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Drives a fixed mixed insert/delete stream through a profiled engine
/// and returns its report.
fn profiled_stream(par: Parallelism, threads: usize) -> ProfileReport {
    let mut rng = StdRng::seed_from_u64(42);
    let el = dynbc::graph::gen::ws(&mut rng, 150, 3, 0.2);
    let sources = sample_sources(&mut rng, 150, 8);
    let mut eng = GpuDynamicBc::new(&el, &sources, DeviceConfig::test_tiny(), par);
    eng.set_profiling(true);
    eng.set_host_threads(threads);
    let mut done = 0;
    let mut rng = StdRng::seed_from_u64(7);
    while done < 12 {
        let a = rng.gen_range(0..150u32);
        let b = rng.gen_range(0..150u32);
        if a == b {
            continue;
        }
        if eng.graph().has_edge(a, b) {
            eng.remove_edge(a, b);
        } else {
            eng.insert_edge(a, b);
        }
        done += 1;
    }
    eng.take_profile_report()
}

#[test]
fn engine_profiles_attribute_work_to_kernel_stages() {
    let report = profiled_stream(Parallelism::Node, 1);
    assert!(!report.launches.is_empty());
    let stages = report.stage_totals();
    let labels: Vec<&str> = stages.iter().map(|(l, _)| l.as_str()).collect();
    assert!(labels.contains(&"common::init"), "labels: {labels:?}");
    assert!(labels.contains(&"common::update"), "labels: {labels:?}");
    assert!(
        labels.iter().any(|l| l.starts_with("case2_node::")),
        "labels: {labels:?}"
    );
    // Stage counters sum to the launch totals.
    let stage_sum: u64 = stages.iter().map(|(_, c)| c.edges_scanned).sum();
    assert_eq!(stage_sum, report.total().edges_scanned);
    // Per-stage launch names from the batched exec layer.
    assert!(report
        .kernel_totals()
        .iter()
        .any(|(k, _)| k.starts_with("batch::fused::node#")));
}

#[test]
fn node_parallel_futile_ratio_is_below_edge_parallel() {
    let node = profiled_stream(Parallelism::Node, 1).total();
    let edge = profiled_stream(Parallelism::Edge, 1).total();
    assert!(node.edges_scanned > 0 && edge.edges_scanned > 0);
    // The paper's central claim as counters: the edge decomposition
    // rescans the whole arc list every level, so nearly all of its
    // scanned edges fail the frontier test; node-parallelism only scans
    // frontier adjacency.
    assert!(
        node.futile_edge_ratio() < edge.futile_edge_ratio(),
        "node futile {} must be below edge futile {}",
        node.futile_edge_ratio(),
        edge.futile_edge_ratio()
    );
    // The queue/dedup pipeline belongs to the node decomposition; the
    // edge path only touches queues in the shared phantom-retraction
    // kernel (one push per adjacent delete).
    assert!(node.queue_pushes > edge.queue_pushes);
    assert_eq!(edge.dedup_ops, 0);
}

#[test]
fn engine_profile_is_bit_identical_across_host_threads() {
    let baseline = profiled_stream(Parallelism::Node, 1);
    for threads in [2usize, 8] {
        let got = profiled_stream(Parallelism::Node, threads);
        assert_eq!(
            baseline, got,
            "engine ProfileReport differs at {threads} host threads"
        );
    }
    assert_eq!(
        baseline.to_json(),
        profiled_stream(Parallelism::Node, 8).to_json()
    );
}

#[test]
fn multi_gpu_merges_device_profiles_in_device_order() {
    let mut rng = StdRng::seed_from_u64(3);
    let el = dynbc::graph::gen::ba(&mut rng, 100, 3);
    let sources = sample_sources(&mut rng, 100, 9);
    let mut multi = MultiGpuDynamicBc::new(
        &el,
        &sources,
        DeviceConfig::test_tiny(),
        Parallelism::Node,
        3,
    );
    multi.set_profiling(true);
    multi.insert_edge(0, 99);
    multi.insert_edge(17, 61);
    let merged = multi.profile_report();
    // Every device ran the same per-op launch sequence (classify + fused
    // grid per op), so the merge holds one entry per device per launch.
    assert_eq!(merged.launches.len() % 3, 0);
    assert!(merged.total().edges_scanned > 0);
}

#[test]
fn profile_env_knob_enables_collection() {
    // Env mutation: run serially with respect to other env-reading tests
    // by using a process-local lock on the variable name.
    let el = EdgeList::from_pairs(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
    std::env::set_var(PROFILE_ENV, "1");
    let mut eng = GpuDynamicBc::new(&el, &[0, 3], DeviceConfig::test_tiny(), Parallelism::Node);
    std::env::remove_var(PROFILE_ENV);
    assert!(eng.profiling());
    eng.insert_edge(0, 5);
    assert!(!eng.profile_report().launches.is_empty());
}
