//! The `dynbc-racecheck` tier: memcheck/racecheck-style checked execution.
//!
//! Two halves, mirroring how `cuda-memcheck --tool racecheck` earns its
//! keep on real hardware:
//!
//! 1. **Deliberately broken fixtures** prove each diagnostic class fires
//!    and carries enough context to act on (kernel name, buffer name, cell
//!    index, offending blocks/lanes): data races (intra-block and
//!    cross-block), sharing-contract violations (atomic+plain mixing,
//!    mixed atomic op kinds across blocks), barrier divergence, and
//!    out-of-bounds indexing.
//! 2. **Clean-run gates** execute every shipped BC kernel — static Brandes
//!    in both decompositions, the full mixed insert/delete streams (Case
//!    2/3 insertions, D2/D3 deletions, both decompositions, both dedup
//!    strategies), and the multi-SM path — under the checker and demand
//!    zero diagnostics of any severity.
//!
//! Run via `cargo test racecheck` (the verify script also sets
//! `DYNBC_RACECHECK=1` so the env plumbing is exercised; the tests
//! themselves opt in programmatically and pass either way).

use dynbc::bc::gpu::DedupStrategy;
use dynbc::gpusim::{DeviceConfig, DiagClass, Gpu, GpuBuffer};
use dynbc::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn gpu() -> Gpu {
    // Fixtures assert on reports, so launches must not panic on errors:
    // force the env default off regardless of DYNBC_RACECHECK.
    Gpu::new(DeviceConfig::test_tiny()).with_racecheck(false)
}

// ---------------------------------------------------------------------------
// Negative fixtures: each diagnostic class must fire, with context.
// ---------------------------------------------------------------------------

#[test]
fn racecheck_flags_intra_block_data_race() {
    let mut g = gpu();
    let cells = GpuBuffer::<u32>::new(16, 0).named("frontier");
    let (_, check) = g.launch_checked("bad_frontier", 1, |block, _| {
        block.label("fixture::scatter");
        block.parallel_for(8, |lane, i| {
            // Every lane writes its own value to one shared cell.
            lane.write(&cells, 5, i as u32);
        });
    });
    assert!(check.has_errors());
    let d = check.errors().next().expect("diagnostic");
    assert_eq!(d.class, DiagClass::DataRace);
    assert_eq!(d.kernel, "bad_frontier");
    assert_eq!(d.label, "fixture::scatter");
    assert_eq!(d.buffer, Some("frontier"));
    assert_eq!(d.index, Some(5));
    assert_eq!(d.lanes.len(), 2, "the conflicting pair: {:?}", d.lanes);
}

#[test]
fn racecheck_flags_cross_block_data_race() {
    let mut g = gpu();
    let cells = GpuBuffer::<f64>::new(8, 0.0).named("bc");
    // The bug the bc_delta slab exists to prevent: blocks writing one
    // shared BC array directly.
    let (_, check) = g.launch_checked("direct_bc_commit", 2, |block, b| {
        block.parallel_for(4, |lane, i| {
            lane.write(&cells, i, (b * 10 + i) as f64);
        });
    });
    assert!(check.has_errors());
    let d = check
        .errors()
        .find(|d| d.class == DiagClass::DataRace)
        .expect("cross-block race");
    assert_eq!(d.buffer, Some("bc"));
    assert_eq!(d.blocks.len(), 2, "both blocks named: {:?}", d.blocks);
    assert!(d.message.contains("never ordered"), "{}", d.message);
}

#[test]
fn racecheck_flags_atomic_plain_mixing_across_blocks() {
    let mut g = gpu();
    let cells = GpuBuffer::<u32>::new(4, 0).named("qlen");
    let (_, check) = g.launch_checked("mixed_access", 2, |block, b| {
        block.parallel_for(2, |lane, _| {
            if b == 0 {
                lane.atomic_add_u32(&cells, 0, 1);
            } else {
                lane.read(&cells, 0); // unsynchronized spy on a contended cell
            }
        });
    });
    assert!(check.has_errors());
    let d = check.errors().next().unwrap();
    assert_eq!(d.class, DiagClass::AtomicContract);
    assert_eq!(d.buffer, Some("qlen"));
    assert_eq!(d.index, Some(0));
}

#[test]
fn racecheck_flags_mixed_atomic_op_kinds() {
    let mut g = gpu();
    let cells = GpuBuffer::<u32>::new(4, 0).named("depth");
    // atomicAdd and atomicMax both commute with themselves but not with
    // each other: from different blocks the final value is order-dependent.
    let (_, check) = g.launch_checked("kind_clash", 2, |block, b| {
        block.parallel_for(2, |lane, _| {
            if b == 0 {
                lane.atomic_add_u32(&cells, 1, 3);
            } else {
                lane.atomic_max_u32(&cells, 1, 100);
            }
        });
    });
    assert!(check.has_errors());
    let d = check.errors().next().unwrap();
    assert_eq!(d.class, DiagClass::AtomicContract);
    assert!(
        d.message.contains("atomic_add_u32") && d.message.contains("atomic_max_u32"),
        "both op kinds named: {}",
        d.message
    );
}

#[test]
fn racecheck_flags_barrier_divergence() {
    let cells = GpuBuffer::<u32>::new(8, 0).named("x");
    let kernel = |block: &mut dynbc::gpusim::BlockCtx, _b: usize| {
        block.parallel_for(4, |lane, i| {
            lane.read(&cells, i);
            if i >= 2 {
                lane.barrier(); // only half the lanes arrive
            }
        });
    };
    // Checked: structured report.
    let mut g = gpu();
    let (_, check) = g.launch_checked("diverging", 1, kernel);
    assert!(check.has_errors());
    let d = check.errors().next().unwrap();
    assert_eq!(d.class, DiagClass::BarrierDivergence);
    assert!(d.message.contains("deadlock"), "{}", d.message);
    // Unchecked: the simulator models the hang as a panic.
    let hung = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        gpu().launch(1, kernel);
    }));
    assert!(hung.is_err(), "unchecked divergence must fail the launch");
}

#[test]
fn racecheck_flags_out_of_bounds_with_buffer_and_index() {
    let mut g = gpu();
    let short = GpuBuffer::<u32>::from_vec(vec![1, 2, 3]).named("adj");
    let (_, check) = g.launch_checked("walks_off_end", 1, |block, _| {
        block.parallel_for(2, |lane, i| {
            lane.write(&short, 3 + i, 77); // both lanes past the end
        });
    });
    assert!(check.has_errors());
    let oob: Vec<_> = check
        .errors()
        .filter(|d| d.class == DiagClass::OutOfBounds)
        .collect();
    assert_eq!(oob.len(), 2, "every OOB site reported, not just the first");
    assert_eq!(oob[0].buffer, Some("adj"));
    assert_eq!(oob[0].index, Some(3));
    assert_eq!(oob[1].index, Some(4));
    assert_eq!(short.to_vec(), [1, 2, 3], "suppressed writes never land");
}

#[test]
fn racecheck_same_value_waw_is_a_warning_not_an_error() {
    // The paper's benign-race shape, unannotated: flagged, but only as a
    // warning (the write is provably value-preserving).
    let mut g = gpu().with_racecheck(true);
    let cells = GpuBuffer::<u32>::new(4, 0).named("t");
    g.launch_named("test_then_set", 1, |block, _| {
        block.parallel_for(4, |lane, _| {
            lane.write(&cells, 0, 1);
        });
    });
    assert_eq!(g.check_warnings(), 1);
    assert_eq!(g.checked_launches(), 1);
}

#[test]
fn racecheck_volatile_declares_benign_races_clean() {
    let mut g = gpu();
    let cells = GpuBuffer::<u32>::new(4, 0).named("t");
    let (_, check) = g.launch_checked("declared_benign", 1, |block, _| {
        block.parallel_for(4, |lane, _| {
            if lane.read(&cells, 0) == 0 {
                lane.write_volatile(&cells, 0, 1);
            }
        });
    });
    assert!(check.is_clean(), "{check}");
    assert_eq!(cells.to_vec()[0], 1);
}

#[test]
fn racecheck_env_opt_in_reaches_new_devices() {
    // Whatever DYNBC_RACECHECK says right now, Gpu::new must agree with
    // the documented parse (no env mutation here: that would race with
    // parallel tests).
    let expect = dynbc::gpusim::racecheck_from_env();
    assert_eq!(Gpu::new(DeviceConfig::test_tiny()).racecheck(), expect);
}

// ---------------------------------------------------------------------------
// Clean-run gates: every shipped BC kernel under the checker.
// ---------------------------------------------------------------------------

#[test]
fn racecheck_clean_static_brandes_both_parallelisms() {
    let mut rng = StdRng::seed_from_u64(404);
    let el = dynbc::graph::gen::er(&mut rng, 36, 80);
    let csr = Csr::from_edge_list(&el);
    let sources: Vec<VertexId> = (0..36).step_by(3).collect();
    for par in [Parallelism::Node, Parallelism::Edge] {
        let (report, check) = dynbc::bc::gpu::static_bc_gpu_checked(
            DeviceConfig::test_tiny(),
            &csr,
            &sources,
            par,
            2,
        );
        assert!(check.is_clean(), "static {par}: {check}");
        assert!(check.accesses > 0, "static {par}: checker saw no traffic");
        // Checked execution must not perturb results.
        let unchecked = static_bc_gpu(DeviceConfig::test_tiny(), &csr, &sources, par, 2);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        assert_eq!(
            bits(&report.bc),
            bits(&unchecked.bc),
            "static {par}: scores"
        );
        assert_eq!(
            report.seconds.to_bits(),
            unchecked.seconds.to_bits(),
            "static {par}: simulated time"
        );
    }
}

/// Drives the determinism suite's 50-event mixed insert/delete stream with
/// every launch checked; any error diagnostic panics inside
/// `launch_named`, and the warning tally must end at zero.
fn checked_mixed_stream(par: Parallelism, dedup: DedupStrategy, graph_seed: u64, stream_seed: u64) {
    let mut rng = StdRng::seed_from_u64(graph_seed);
    let el = dynbc::graph::gen::er(&mut rng, 30, 60);
    let sources = sample_sources(&mut rng, 30, 6);
    let mut eng = GpuDynamicBc::new(&el, &sources, DeviceConfig::test_tiny(), par)
        .with_dedup_strategy(dedup)
        .with_racecheck(true);
    let n = el.vertex_count() as u32;
    let mut rng = StdRng::seed_from_u64(stream_seed);
    let mut done = 0;
    while done < 50 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b {
            continue;
        }
        if eng.graph().has_edge(a, b) {
            eng.remove_edge(a, b);
        } else {
            eng.insert_edge(a, b);
        }
        done += 1;
    }
    assert!(eng.checked_launches() > 0, "stream never hit the checker");
    assert_eq!(
        eng.racecheck_warnings(),
        0,
        "{par}/{dedup:?}: shipped kernels must run warning-free"
    );
    // The checked stream must land on the same state a fresh Brandes does.
    let csr = eng.graph().to_csr();
    let st = eng.state_snapshot();
    let fresh = dynbc::bc::brandes::brandes_state(&csr, &st.sources);
    for v in 0..st.n {
        assert!(
            (st.bc[v] - fresh.bc[v]).abs() < 1e-6,
            "{par}/{dedup:?}: BC[{v}] drifted under checking"
        );
    }
}

#[test]
fn racecheck_clean_mixed_stream_node_sortscan() {
    checked_mixed_stream(Parallelism::Node, DedupStrategy::SortScan, 2014, 0xD15EA5E);
}

#[test]
fn racecheck_clean_mixed_stream_node_atomiccas() {
    checked_mixed_stream(Parallelism::Node, DedupStrategy::AtomicCas, 2014, 0xD15EA5E);
}

#[test]
fn racecheck_clean_mixed_stream_edge() {
    checked_mixed_stream(Parallelism::Edge, DedupStrategy::SortScan, 1414, 0xBADC0DE);
}

#[test]
fn racecheck_clean_force_general_stream() {
    // The ablation path: Case 2 insertions routed through the Case 3
    // relocation machinery.
    let mut rng = StdRng::seed_from_u64(99);
    let el = dynbc::graph::gen::ws(&mut rng, 24, 2, 0.3);
    let sources = sample_sources(&mut rng, 24, 4);
    for par in [Parallelism::Node, Parallelism::Edge] {
        let mut eng = GpuDynamicBc::new(&el, &sources, DeviceConfig::test_tiny(), par)
            .with_force_general(true)
            .with_racecheck(true);
        let mut done = 0;
        let mut rng = StdRng::seed_from_u64(7);
        while done < 10 {
            let a = rng.gen_range(0..24u32);
            let b = rng.gen_range(0..24u32);
            if a == b || eng.graph().has_edge(a, b) {
                continue;
            }
            eng.insert_edge(a, b);
            done += 1;
        }
        assert_eq!(eng.racecheck_warnings(), 0, "{par}: force-general warnings");
    }
}

#[test]
fn racecheck_clean_multi_sm_path() {
    let mut rng = StdRng::seed_from_u64(5150);
    let el = dynbc::graph::gen::er(&mut rng, 24, 50);
    let sources = sample_sources(&mut rng, 24, 8);
    let mut multi = dynbc::bc::gpu::MultiGpuDynamicBc::new(
        &el,
        &sources,
        DeviceConfig::test_tiny(),
        Parallelism::Node,
        3,
    );
    multi.set_racecheck(true);
    let mut rng = StdRng::seed_from_u64(31);
    let mut done = 0;
    while done < 12 {
        let a = rng.gen_range(0..24u32);
        let b = rng.gen_range(0..24u32);
        if a == b {
            continue;
        }
        if multi.graph().has_edge(a, b) {
            multi.remove_edge(a, b);
        } else {
            multi.insert_edge(a, b);
        }
        done += 1;
    }
    assert_eq!(multi.racecheck_warnings(), 0, "multi-SM stream warnings");
}

#[test]
fn racecheck_checked_stream_is_cost_and_state_neutral() {
    // Checked execution observes; it must never perturb the simulation.
    let run = |checked: bool| {
        let mut rng = StdRng::seed_from_u64(606);
        let el = dynbc::graph::gen::er(&mut rng, 22, 44);
        let sources = sample_sources(&mut rng, 22, 4);
        let mut eng =
            GpuDynamicBc::new(&el, &sources, DeviceConfig::test_tiny(), Parallelism::Node)
                .with_racecheck(checked);
        let mut rng = StdRng::seed_from_u64(17);
        let mut done = 0;
        while done < 12 {
            let a = rng.gen_range(0..22u32);
            let b = rng.gen_range(0..22u32);
            if a == b {
                continue;
            }
            if eng.graph().has_edge(a, b) {
                eng.remove_edge(a, b);
            } else {
                eng.insert_edge(a, b);
            }
            done += 1;
        }
        let st = eng.state_snapshot();
        let bc_bits: Vec<u64> = st.bc.iter().map(|x| x.to_bits()).collect();
        (eng.elapsed_seconds().to_bits(), bc_bits)
    };
    let (t0, bc0) = run(false);
    let (t1, bc1) = run(true);
    assert_eq!(t0, t1, "checked mode changed simulated seconds");
    assert_eq!(bc0, bc1, "checked mode changed BC bits");
}
