//! Cross-crate invariants of the machine model: functional results must
//! be independent of every cost-model knob, and cost must respond to the
//! knobs in the direction the paper's argument requires.

use dynbc::bc::gpu::static_bc_gpu;
use dynbc::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn assert_close(a: &[f64], b: &[f64], ctx: &str) {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let tol = 1e-9 * x.abs().max(y.abs()).max(1.0);
        assert!((x - y).abs() <= tol, "{ctx}: BC[{i}] {x} vs {y}");
    }
}

fn test_graph(n: usize, seed: u64) -> EdgeList {
    let mut rng = StdRng::seed_from_u64(seed);
    dynbc::graph::gen::ws(&mut rng, n, 3, 0.15)
}

#[test]
fn results_are_identical_across_devices() {
    let el = test_graph(300, 1);
    let csr = Csr::from_edge_list(&el);
    let sources: Vec<u32> = (0..30).collect();
    let a = static_bc_gpu(
        DeviceConfig::tesla_c2075(),
        &csr,
        &sources,
        Parallelism::Node,
        14,
    );
    let b = static_bc_gpu(DeviceConfig::gtx560(), &csr, &sources, Parallelism::Node, 7);
    let c = static_bc_gpu(
        DeviceConfig::test_tiny(),
        &csr,
        &sources,
        Parallelism::Node,
        3,
    );
    // Accumulation order differs with warp size and scheduling, so the
    // comparison is to f64 round-off, not bit equality.
    assert_close(&a.bc, &b.bc, "C2075 vs GTX 560");
    assert_close(&a.bc, &c.bc, "C2075 vs test device");
}

#[test]
fn results_are_identical_across_block_counts() {
    let el = test_graph(200, 2);
    let csr = Csr::from_edge_list(&el);
    let sources: Vec<u32> = (0..20).collect();
    let base = static_bc_gpu(
        DeviceConfig::test_tiny(),
        &csr,
        &sources,
        Parallelism::Node,
        1,
    );
    for blocks in [2, 3, 5, 8, 16] {
        let other = static_bc_gpu(
            DeviceConfig::test_tiny(),
            &csr,
            &sources,
            Parallelism::Node,
            blocks,
        );
        assert_close(&base.bc, &other.bc, "block count changed results");
    }
}

#[test]
fn dynamic_results_are_identical_across_devices() {
    let el = test_graph(120, 3);
    let mut rng = StdRng::seed_from_u64(9);
    let sources = sample_sources(&mut rng, 120, 8);
    let mut fast = GpuDynamicBc::new(
        &el,
        &sources,
        DeviceConfig::tesla_c2075(),
        Parallelism::Node,
    );
    let mut tiny = GpuDynamicBc::new(&el, &sources, DeviceConfig::test_tiny(), Parallelism::Node);
    for (u, v) in [(0u32, 60u32), (5, 99), (30, 110), (1, 119)] {
        if fast.graph().has_edge(u, v) {
            continue;
        }
        fast.insert_edge(u, v);
        tiny.insert_edge(u, v);
    }
    assert_close(
        &fast.state_snapshot().bc,
        &tiny.state_snapshot().bc,
        "dynamic devices",
    );
}

#[test]
fn edge_and_node_agree_functionally_but_not_in_cost() {
    let el = test_graph(400, 4);
    let csr = Csr::from_edge_list(&el);
    let sources: Vec<u32> = (0..24).collect();
    let node = static_bc_gpu(
        DeviceConfig::tesla_c2075(),
        &csr,
        &sources,
        Parallelism::Node,
        14,
    );
    let edge = static_bc_gpu(
        DeviceConfig::tesla_c2075(),
        &csr,
        &sources,
        Parallelism::Edge,
        14,
    );
    for v in 0..400 {
        assert!(
            (node.bc[v] - edge.bc[v]).abs() < 1e-9,
            "decompositions disagree at {v}"
        );
    }
    assert_ne!(
        node.stats.mem_segments, edge.stats.mem_segments,
        "the two decompositions should not move identical traffic"
    );
}

#[test]
fn makespan_improves_up_to_sm_count_then_plateaus() {
    // Figure 1's mechanism at test scale: fixed total work, increasing
    // block counts on a 14-SM device.
    let el = test_graph(220, 5);
    let csr = Csr::from_edge_list(&el);
    let sources: Vec<u32> = (0..28).collect();
    let device = DeviceConfig::tesla_c2075();
    let t =
        |blocks: usize| static_bc_gpu(device, &csr, &sources, Parallelism::Node, blocks).seconds;
    let t1 = t(1);
    let t7 = t(7);
    let t14 = t(14);
    let t28 = t(28);
    assert!(t7 < t1 * 0.5, "7 blocks should be far faster than 1");
    assert!(t14 < t7, "14 blocks beat 7 on 14 SMs");
    // Beyond one block per SM: no further meaningful gain.
    assert!(
        t28 > t14 * 0.8,
        "blocks beyond SM count must not keep scaling"
    );
}

#[test]
fn deterministic_replay_of_a_full_experiment() {
    let run = || {
        let el = test_graph(150, 6);
        let mut rng = StdRng::seed_from_u64(77);
        let sources = sample_sources(&mut rng, 150, 6);
        let mut engine = GpuDynamicBc::new(
            &el,
            &sources,
            DeviceConfig::tesla_c2075(),
            Parallelism::Edge,
        );
        let mut seconds = Vec::new();
        for (u, v) in [(3u32, 77u32), (10, 140), (66, 67)] {
            if engine.graph().has_edge(u, v) {
                continue;
            }
            let r = engine.insert_edge(u, v);
            seconds.push(r.model_seconds);
        }
        (seconds, engine.state_snapshot().bc)
    };
    let (s1, bc1) = run();
    let (s2, bc2) = run();
    assert_eq!(s1, s2, "simulated times must replay bit-for-bit");
    assert_eq!(bc1, bc2);
}

#[test]
fn case1_updates_cost_orders_of_magnitude_less_than_worked_ones() {
    // A 4-cycle seen from one source: inserting the diagonal between the
    // two distance-1 vertices is Case 1 for it. Compare against a real
    // Case 3 update on the same engine.
    let el = EdgeList::from_pairs(4096, (0..4095).map(|i| (i, i + 1)));
    let sources = vec![0u32];
    let mut engine = GpuDynamicBc::new(
        &el,
        &sources,
        DeviceConfig::tesla_c2075(),
        Parallelism::Node,
    );
    let worked = engine.insert_edge(1, 4000); // huge Case 3 shortcut
                                              // Vertices 2 and 4000 are now both at distance 2 from 0 → Case 1.
    let snapshot = engine.state_snapshot();
    assert_eq!(snapshot.d[0][2], snapshot.d[0][4000]);
    let idle = engine.insert_edge(2, 4000);
    assert_eq!(idle.cases.same, 1);
    assert!(
        idle.model_seconds * 10.0 < worked.model_seconds,
        "case-1 insertion ({}) should be ≫ cheaper than the worked one ({})",
        idle.model_seconds,
        worked.model_seconds
    );
}
