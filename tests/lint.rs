//! The lint fixture tier: proves every `dynbc-lint` rule is live.
//!
//! Each fixture under `tests/fixtures/lint/` deliberately violates
//! exactly one rule; it is linted under a *virtual* path inside that
//! rule's scope (the fixtures directory itself is never scanned by the
//! workspace lint), and the test pins the triggered rule and line. A
//! clean-tree run and a byte-identical JSON snapshot round out the
//! tier.

use dynbc_lint::{find_workspace_root, lint_source, lint_workspace, Finding};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/lint")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Asserts the fixture triggers exactly the expected `(rule, line)`
/// findings under `virtual_path`, and nothing anywhere else.
fn expect(virtual_path: &str, name: &str, expected: &[(&str, usize)]) -> Vec<Finding> {
    let findings = lint_source(virtual_path, &fixture(name));
    let got: Vec<(&str, usize)> = findings.iter().map(|f| (f.rule, f.line)).collect();
    assert_eq!(
        got, expected,
        "{name} under {virtual_path} reported {findings:#?}"
    );
    findings
}

#[test]
fn ordered_iteration_fixture() {
    expect(
        "crates/bc/src/native/fixture.rs",
        "ordered_iteration.rs",
        &[("ordered-iteration", 9)],
    );
    // The same snippet outside the commit/merge/export paths is silent.
    assert!(lint_source(
        "crates/graph/src/fixture.rs",
        &fixture("ordered_iteration.rs")
    )
    .is_empty());
    // The serve layer is in scope: its tenant iteration order feeds the
    // Prometheus exposition and the shutdown snapshot map.
    expect(
        "crates/serve/src/fixture.rs",
        "ordered_iteration.rs",
        &[("ordered-iteration", 9)],
    );
    // Maps arriving as typed fn parameters are tracked too, not just
    // let bindings.
    let param = "pub fn f(m: &std::collections::HashMap<u32, u32>) -> u32 {\n    \
                 let mut n = 0;\n    for (_, v) in m.iter() {\n        n += v;\n    }\n    n\n}\n";
    let findings = lint_source("crates/bc/src/gpu/exec.rs", param);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(
        (findings[0].rule, findings[0].line),
        ("ordered-iteration", 3)
    );
}

#[test]
fn no_wall_clock_fixture() {
    expect(
        "crates/bc/src/dynamic/fixture.rs",
        "no_wall_clock.rs",
        &[("no-wall-clock", 4)],
    );
    // Bench harnesses measure wall time by definition.
    assert!(lint_source(
        "crates/bench/benches/fixture.rs",
        &fixture("no_wall_clock.rs")
    )
    .is_empty());
}

#[test]
fn knob_registry_fixture() {
    expect(
        "src/fixture.rs",
        "knob_registry.rs",
        &[("knob-registry", 4)],
    );
    // The registry module itself is the one place allowed literals.
    assert!(lint_source("crates/gpu-sim/src/knob.rs", &fixture("knob_registry.rs")).is_empty());
}

#[test]
fn unsafe_safety_fixture() {
    expect(
        "crates/gpu-sim/src/fixture.rs",
        "unsafe_safety.rs",
        &[("unsafe-safety", 5)],
    );
    // A SAFETY comment directly above the token satisfies the rule.
    let fixed = fixture("unsafe_safety.rs").replace(
        "// a comment that is not the required one",
        "// SAFETY: xs is non-empty by contract",
    );
    assert!(lint_source("crates/gpu-sim/src/fixture.rs", &fixed).is_empty());
}

#[test]
fn float_accumulation_fixture() {
    expect(
        "crates/bc/src/gpu/kernels/fixture.rs",
        "float_accumulation.rs",
        &[("float-accumulation", 7)],
    );
    // The approved pattern: the same reduction through the bc_delta slab.
    let slab = fixture("float_accumulation.rs").replace("acc += v;", "bc_delta_acc(&mut acc, *v);");
    assert!(lint_source("crates/bc/src/gpu/kernels/fixture.rs", &slab).is_empty());
}

#[test]
fn named_launches_fixture() {
    expect(
        "crates/bc/src/gpu/fixture.rs",
        "named_launches.rs",
        &[("named-launches", 7), ("named-launches", 8)],
    );
    // Naming the buffer and the launch clears both findings.
    let named = fixture("named_launches.rs")
        .replace(
            "GpuBuffer::new(4, 0);",
            "GpuBuffer::new(4, 0).named(\"fixture\");",
        )
        .replace("gpu.launch(1,", "gpu.launch_named(\"fixture\", 1,");
    assert!(lint_source("crates/bc/src/gpu/fixture.rs", &named).is_empty());
}

#[test]
fn hot_path_rebuild_fixture() {
    expect(
        "crates/bc/src/gpu/engine.rs",
        "hot_path_rebuild.rs",
        &[("hot-path-rebuild", 7), ("hot-path-rebuild", 8)],
    );
    // The same snippet outside the update hot paths is silent: full
    // canonicalization is the normal idiom for construction and oracles.
    assert!(lint_source(
        "crates/graph/src/fixture.rs",
        &fixture("hot_path_rebuild.rs")
    )
    .is_empty());
    // An annotated construction site inside the scope is clean.
    let annotated = fixture("hot_path_rebuild.rs").replace(
        "    let snapshot = graph.to_csr();",
        "    // dynbc-lint: allow(hot-path-rebuild) — fixture construction site, not the per-op path\n    \
         let snapshot = graph.to_csr();",
    );
    let findings = lint_source("crates/bc/src/gpu/engine.rs", &annotated);
    assert_eq!(
        findings
            .iter()
            .map(|f| (f.rule, f.line))
            .collect::<Vec<_>>(),
        [("hot-path-rebuild", 9)],
        "{findings:#?}"
    );
}

#[test]
fn reasoned_annotation_suppresses() {
    // Same violation as float_accumulation.rs, but annotated with a
    // reason: clean.
    assert!(lint_source(
        "crates/bc/src/gpu/kernels/fixture.rs",
        &fixture("annotated_clean.rs")
    )
    .is_empty());
}

#[test]
fn reasonless_annotation_is_a_finding_and_does_not_suppress() {
    let stripped = fixture("annotated_clean.rs").replace(
        "allow(float-accumulation) — fixture accumulator is",
        "allow(float-accumulation)",
    );
    let findings = lint_source("crates/bc/src/gpu/kernels/fixture.rs", &stripped);
    let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    assert!(
        rules.contains(&"allow-annotation") && rules.contains(&"float-accumulation"),
        "reasonless allow must be reported and must not suppress: {findings:#?}"
    );
}

#[test]
fn unknown_rule_and_stale_annotation_are_findings() {
    let unknown =
        fixture("annotated_clean.rs").replace("allow(float-accumulation)", "allow(no-such-rule)");
    let findings = lint_source("crates/bc/src/gpu/kernels/fixture.rs", &unknown);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "allow-annotation" && f.message.contains("no-such-rule")),
        "{findings:#?}"
    );

    // An annotation that stops suppressing anything goes stale and is
    // itself reported.
    let stale = fixture("annotated_clean.rs").replace("acc += v;", "let _ = v;");
    let findings = lint_source("crates/bc/src/gpu/kernels/fixture.rs", &stale);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, "allow-annotation");
    assert!(findings[0].message.contains("suppresses nothing"));
}

#[test]
fn clean_tree_passes() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let report = lint_workspace(&root).expect("workspace scan");
    assert!(
        report.is_clean(),
        "the tree must lint clean:\n{}",
        report.human()
    );
    assert!(
        report.files_scanned > 50,
        "scan saw {} files",
        report.files_scanned
    );
}

#[test]
fn json_report_is_byte_identical_across_runs() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let a = lint_workspace(&root).expect("first scan");
    let b = lint_workspace(&root).expect("second scan");
    assert_eq!(a.json(), b.json(), "JSON report must be deterministic");
    assert_eq!(a.human(), b.human(), "human report must be deterministic");
    // And the JSON carries the fixed schema keys in fixed order.
    let json = a.json();
    let files_at = json.find("\"files_scanned\"").unwrap();
    let lines_at = json.find("\"lines_scanned\"").unwrap();
    let findings_at = json.find("\"findings\"").unwrap();
    assert!(files_at < lines_at && lines_at < findings_at);
}
