//! Bit-determinism of the GPU engines under host-parallel block execution.
//!
//! `Gpu::launch` may fan simulated thread blocks over real host threads
//! (`DYNBC_HOST_THREADS`). The contract is strict: **every** output —
//! simulated seconds, work counters, and the full dynamic-BC state,
//! including each `f64` bit pattern — must be identical whether blocks
//! ran sequentially or on 2 or 8 host threads. These tests drive mixed
//! insert/delete streams on two graph families through both work
//! decompositions and compare everything bit-wise against the
//! single-threaded run.

use dynbc::gpusim::{DeviceConfig, KernelStats};
use dynbc::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bit patterns of `(bc, d, sigma, delta)` from a [`BcState`].
type StateBits = (Vec<u64>, Vec<Vec<u32>>, Vec<Vec<u64>>, Vec<Vec<u64>>);

/// Bit-exact projection of a [`BcState`]: `f64` fields as raw bits.
fn state_bits(st: &BcState) -> StateBits {
    let bits = |row: &[f64]| row.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    (
        bits(&st.bc),
        st.d.clone(),
        st.sigma.iter().map(|r| bits(r)).collect(),
        st.delta.iter().map(|r| bits(r)).collect(),
    )
}

/// Runs a deterministic `events`-long mixed insert/delete stream on
/// `threads` host threads and returns everything the determinism contract
/// covers.
fn run_stream(
    el: &EdgeList,
    sources: &[VertexId],
    par: Parallelism,
    threads: usize,
    events: usize,
    seed: u64,
) -> (u64, KernelStats, StateBits) {
    let n = el.vertex_count() as u32;
    let mut eng =
        GpuDynamicBc::new(el, sources, DeviceConfig::test_tiny(), par).with_host_threads(threads);
    assert_eq!(eng.host_threads(), threads.max(1));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut done = 0;
    while done < events {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b {
            continue;
        }
        if eng.graph().has_edge(a, b) {
            eng.remove_edge(a, b);
        } else {
            eng.insert_edge(a, b);
        }
        done += 1;
    }
    (
        eng.elapsed_seconds().to_bits(),
        *eng.total_stats(),
        state_bits(&eng.state_snapshot()),
    )
}

/// The shared harness: 50 mixed events, threads ∈ {1, 2, 8}, bit-compared
/// against the sequential baseline.
fn assert_thread_count_invariant(el: &EdgeList, par: Parallelism, seed: u64, family: &str) {
    let mut rng = StdRng::seed_from_u64(seed);
    let sources = sample_sources(&mut rng, el.vertex_count(), 6);
    let baseline = run_stream(el, &sources, par, 1, 50, seed ^ 0xD15EA5E);
    for threads in [2usize, 8] {
        let got = run_stream(el, &sources, par, threads, 50, seed ^ 0xD15EA5E);
        assert_eq!(
            baseline.0, got.0,
            "{family}/{par}: elapsed_seconds differs at {threads} host threads"
        );
        assert_eq!(
            baseline.1, got.1,
            "{family}/{par}: total_stats differs at {threads} host threads"
        );
        assert_eq!(
            baseline.2, got.2,
            "{family}/{par}: BcState differs at {threads} host threads"
        );
    }
}

#[test]
fn erdos_renyi_stream_is_bit_identical_across_host_threads() {
    let mut rng = StdRng::seed_from_u64(2014);
    let el = dynbc::graph::gen::er(&mut rng, 32, 70);
    assert_thread_count_invariant(&el, Parallelism::Node, 11, "er");
}

#[test]
fn small_world_stream_is_bit_identical_across_host_threads() {
    let mut rng = StdRng::seed_from_u64(1414);
    let el = dynbc::graph::gen::ws(&mut rng, 36, 2, 0.2);
    assert_thread_count_invariant(&el, Parallelism::Edge, 23, "ws");
}

#[test]
fn static_bc_is_bit_identical_across_host_threads() {
    // The static kernels stage their BC accumulation through the same
    // per-block delta slab; the report must be thread-count-invariant too.
    let mut rng = StdRng::seed_from_u64(77);
    let el = dynbc::graph::gen::geometric(&mut rng, 120, 0.08);
    let csr = Csr::from_edge_list(&el);
    let sources: Vec<VertexId> = (0..120).step_by(5).collect();
    let run = |threads: usize| {
        let report = static_bc_gpu_on(
            DeviceConfig::test_tiny(),
            &csr,
            &sources,
            Parallelism::Node,
            7,
            Some(threads),
        );
        (
            report.seconds.to_bits(),
            report.stats,
            report.bc.iter().map(|x| x.to_bits()).collect::<Vec<u64>>(),
            report
                .block_cycles
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<u64>>(),
        )
    };
    let baseline = run(1);
    for threads in [2usize, 8] {
        let got = run(threads);
        assert_eq!(baseline, got, "static BC differs at {threads} host threads");
    }
}
