//! # dynbc — dynamic betweenness centrality, edge- vs node-parallel
//!
//! A Rust reproduction of *"Revisiting Edge and Node Parallelism for
//! Dynamic GPU Graph Analytics"* (McLaughlin & Bader, IPDPS Workshops
//! 2014): incremental betweenness-centrality updates under streaming edge
//! insertions, with the paper's two GPU work decompositions executed on a
//! deterministic SIMT machine model.
//!
//! ## Quick start
//!
//! ```
//! use dynbc::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // A small-world graph and a handful of BC sources.
//! let mut rng = StdRng::seed_from_u64(7);
//! let graph = dynbc::graph::gen::ws(&mut rng, 200, 3, 0.1);
//! let sources = sample_sources(&mut rng, 200, 16);
//!
//! // Dynamic engine: Brandes once, then incremental updates.
//! let mut engine = CpuDynamicBc::new(&graph, &sources);
//! let result = engine.insert_edge(3, 117);
//! println!(
//!     "insertion touched at most {} vertices across {} sources",
//!     result.max_touched(),
//!     result.per_source.len()
//! );
//!
//! // The same update on the simulated GPU, node-parallel.
//! let mut gpu = GpuDynamicBc::new(&graph, &sources, DeviceConfig::tesla_c2075(), Parallelism::Node);
//! let gpu_result = gpu.insert_edge(3, 117);
//! assert_eq!(gpu_result.cases, result.cases);
//!
//! // Streaming workloads batch their events: one shared update plan,
//! // fused kernel launches, results bit-identical to one-at-a-time.
//! let batch = [EdgeOp::Insert(5, 90), EdgeOp::Remove(3, 117)];
//! let report = gpu.apply_batch(&batch);
//! assert_eq!(report.per_op.len(), 2);
//! ```
//!
//! ## Crate map
//!
//! | Module | Backing crate | Contents |
//! |---|---|---|
//! | [`graph`] | `dynbc-graph` | CSR, STINGER-lite dynamic store, DIMACS-family generators, METIS I/O |
//! | [`gpusim`] | `dynbc-gpusim` | the SIMT execution/cost model (warps, coalescing, atomics, SM scheduling) |
//! | [`bc`] | `dynbc-bc` | Brandes, the Case 1/2/3 taxonomy, dynamic CPU engine, GPU kernels and engines |
//! | [`ds`] | `dynbc-ds` | bitonic sort, prefix scans, duplicate removal, multi-level queues |
//! | [`telemetry`] | `dynbc-telemetry` | update-lifecycle metrics registry, span tracing, Prometheus/JSONL/Perfetto exporters |
//! | [`serve`] | `dynbc-serve` | streaming service layer: per-tenant shards, bounded ingest, lock-free score snapshots |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dynbc_bc as bc;
pub use dynbc_ds as ds;
pub use dynbc_gpusim as gpusim;
pub use dynbc_graph as graph;
pub use dynbc_serve as serve;
pub use dynbc_telemetry as telemetry;

/// The one-import surface for applications.
pub mod prelude {
    pub use dynbc_bc::brandes::{brandes_approx, brandes_exact, brandes_state, sample_sources};
    pub use dynbc_bc::cases::{classify, CaseCounts, InsertionCase};
    pub use dynbc_bc::dynamic::{
        BatchResult, CpuDynamicBc, OpOutcome, SourceOutcome, UpdateResult,
    };
    pub use dynbc_bc::gpu::{
        backend_from_env, static_bc_gpu, static_bc_gpu_on, Backend, GpuDynamicBc,
        MultiGpuDynamicBc, Parallelism, StaticBcReport,
    };
    pub use dynbc_bc::state::BcState;
    pub use dynbc_gpusim::{CpuConfig, DeviceConfig};
    pub use dynbc_graph::{Csr, DynGraph, EdgeList, EdgeOp, VertexId};
    pub use dynbc_telemetry::{Telemetry, UpdateObservation};
}
